// Sharded sweeps from the CLI: -shard i/n runs one partition of a
// -scenario grid and streams JSONL; -shards n supervises n child
// processes (liveness tracking, classified retries, rescue of dead
// shards' jobs) and merges their logs; -ab a.json,b.json fans two
// variant grids across shards and reports per-variant p50/p95/p99
// rollups with a verdict. See DESIGN.md §13–14.
package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"sprout/internal/dispatch"
	"sprout/internal/engine"
	"sprout/internal/fault"
	"sprout/internal/harness"
	"sprout/internal/scenario"
	"sprout/internal/stats"
)

// shardMode is the validated sharding configuration parsed from flags.
type shardMode struct {
	// Shard is set in worker mode (-shard i/n): run one partition.
	Shard *engine.Shard
	// Out is the worker's JSONL destination ("" = stdout).
	Out string
	// Shards > 1 is parent mode: supervise child processes and merge.
	Shards int
	// Checkpoint is the shard-log directory ("" = temp, discarded).
	Checkpoint string
	// AB holds the two variant scenario files in A/B mode.
	AB []string
	// Hosts is the dispatch pool for parent mode (empty = one implicit
	// local host); Transport the remote command template ("" = local
	// child processes).
	Hosts     []string
	Transport string
	// Retries bounds attempts per shard; Stall is the liveness deadline.
	Retries int
	Stall   time.Duration
	// Timeout is the sweep-wide deadline (0 = none); an expired sweep
	// exits via the -partial path with the exact missing-index report.
	Timeout time.Duration
	// Chaos, when nonzero, seeds a deterministic fault plan.
	Chaos int64
	// Partial tolerates an incomplete merge (report + degrade, exit 0);
	// Rescue recomputes dead shards' jobs in-process.
	Partial bool
	Rescue  bool
}

// shardFlagInputs carries the raw sharding flag values into validation.
type shardFlagInputs struct {
	Shard      string
	Shards     int
	AB         string
	Scenario   string
	Out        string
	Checkpoint string
	Hosts      string
	Transport  string
	Retries    int
	Stall      time.Duration
	Timeout    time.Duration
	Chaos      int64
	Partial    bool
	Rescue     bool
}

// parseShardFlags validates the sharding flag combination, returning a
// one-line error (never panicking) on anything malformed — the CLI turns
// that into exit code 2.
func parseShardFlags(in shardFlagInputs) (shardMode, error) {
	var m shardMode
	if in.Shards < 0 {
		return m, fmt.Errorf("-shards must be >= 0, got %d", in.Shards)
	}
	if in.Retries < 0 {
		return m, fmt.Errorf("-retries must be >= 0, got %d", in.Retries)
	}
	if in.Stall < 0 {
		return m, fmt.Errorf("-stall must be >= 0, got %v", in.Stall)
	}
	if in.Timeout < 0 {
		return m, fmt.Errorf("-timeout must be >= 0, got %v", in.Timeout)
	}
	parent := in.AB == "" && in.Shard == "" && in.Shards > 1
	if !parent {
		if in.Chaos != 0 {
			return m, fmt.Errorf("-chaos injects faults into supervised children; it requires parent mode (-shards > 1)")
		}
		if in.Partial {
			return m, fmt.Errorf("-partial degrades a supervised merge; it requires parent mode (-shards > 1)")
		}
		if in.Hosts != "" {
			return m, fmt.Errorf("-hosts names a dispatch pool for supervised shards; it requires parent mode (-shards > 1)")
		}
		if in.Transport != "" {
			return m, fmt.Errorf("-transport dispatches supervised shards; it requires parent mode (-shards > 1)")
		}
		if in.Timeout != 0 {
			return m, fmt.Errorf("-timeout bounds a supervised sweep; it requires parent mode (-shards > 1)")
		}
	}
	if in.Transport != "" && in.Hosts == "" {
		return m, fmt.Errorf("-transport runs shards on the machines named by -hosts; -hosts is required")
	}
	if in.AB != "" {
		parts := strings.Split(in.AB, ",")
		if len(parts) != 2 || strings.TrimSpace(parts[0]) == "" || strings.TrimSpace(parts[1]) == "" {
			return m, fmt.Errorf("-ab wants exactly two scenario files as \"specA.json,specB.json\", got %q", in.AB)
		}
		if in.Shard != "" {
			return m, fmt.Errorf("-ab and -shard are mutually exclusive")
		}
		if in.Scenario != "" {
			return m, fmt.Errorf("-ab replaces -scenario; give the variant files to -ab only")
		}
		m.AB = []string{strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])}
		m.Shards = in.Shards
		return m, nil
	}
	if in.Shard != "" {
		sh, err := engine.ParseShard(in.Shard)
		if err != nil {
			return m, err
		}
		if in.Scenario == "" {
			return m, fmt.Errorf("-shard runs one partition of a -scenario grid; -scenario is required")
		}
		if in.Shards > 0 {
			return m, fmt.Errorf("-shard (worker mode) and -shards (parent mode) are mutually exclusive")
		}
		m.Shard = &sh
		m.Out = in.Out
		return m, nil
	}
	if in.Shards > 1 {
		if in.Scenario == "" {
			return m, fmt.Errorf("-shards fans a -scenario grid across child processes; -scenario is required")
		}
		m.Shards = in.Shards
		m.Checkpoint = in.Checkpoint
		if in.Hosts != "" {
			for _, h := range strings.Split(in.Hosts, ",") {
				h = strings.TrimSpace(h)
				if h == "" {
					return m, fmt.Errorf("-hosts has an empty host name in %q", in.Hosts)
				}
				m.Hosts = append(m.Hosts, h)
			}
		}
		m.Transport = in.Transport
		m.Retries = in.Retries
		if m.Retries == 0 {
			m.Retries = 3
		}
		m.Stall = in.Stall
		if m.Stall == 0 {
			m.Stall = 2 * time.Minute
		}
		m.Timeout = in.Timeout
		m.Chaos = in.Chaos
		m.Partial = in.Partial
		m.Rescue = in.Rescue
	}
	return m, nil
}

// loadScenarioSpecs loads a scenario file and fills unset per-spec fields
// from the CLI options — in the parent, the children and a direct run
// alike, so every participant compiles the identical grid (and therefore
// the identical checkpoint fingerprint).
func loadScenarioSpecs(path string, opt harness.Options) ([]scenario.Spec, int, error) {
	specs, err := scenario.LoadFile(path)
	if err != nil {
		return nil, 0, err
	}
	streaming := 0
	for i := range specs {
		if specs[i].Duration == 0 {
			specs[i].Duration = scenario.Duration(opt.Duration)
		}
		if specs[i].Skip == 0 {
			specs[i].Skip = scenario.Duration(opt.Skip)
		}
		if specs[i].Seed == 0 {
			specs[i].Seed = opt.Seed
		}
		if specs[i].Process != nil {
			streaming++
		}
	}
	return specs, streaming, nil
}

// runShardWorker is the child half of a multi-process sweep: compile the
// grid, run the owned partition, append records to the JSONL log. An
// existing log resumes — completed indexes are skipped, a torn tail from
// a killed predecessor is truncated — so the supervisor's retries never
// recompute finished jobs. Permanent conditions exit with exitPermanent
// so the supervisor fails the shard fast instead of burning retries: an
// unloadable grid, or a corrupt (terminated-garbage) checkpoint log.
// Faults a chaos supervisor injected via SPROUT_FAULT are wired around
// the log writer here — the recovery machinery upstream cannot tell an
// injected failure from a real one.
func runShardWorker(scenarioFile string, sh engine.Shard, out string, opt harness.Options) {
	inj, err := fault.FromEnv()
	check(err)
	inj.Start()
	specs, _, err := loadScenarioSpecs(scenarioFile, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sproutbench:", err)
		fatalExit(exitPermanent)
	}
	var done []int
	var w *engine.RecordWriter
	if out == "" {
		w = engine.NewRecordWriter(inj.Writer(os.Stdout))
	} else {
		recs, f, err := engine.OpenShardLog(out)
		if errors.Is(err, engine.ErrCorruptLog) {
			fmt.Fprintln(os.Stderr, "sproutbench:", err)
			fatalExit(exitPermanent)
		}
		check(err)
		defer f.Close()
		done = engine.CompletedIndexes(recs)
		w = engine.NewRecordWriterSynced(inj.Writer(f), f.Sync)
	}
	st, err := scenario.RunShard(context.Background(), opt.Engine, specs, sh, done, w)
	check(err)
	fmt.Fprintf(os.Stderr, "shard %s: %d of %d jobs (%d resumed); %s\n",
		sh, sh.Size(len(specs)), len(specs), len(done), st)
}

// childWorkers splits the machine width across n children the same way
// the in-process runner does, so a fan-out saturates the host without
// oversubscribing it n times.
func childWorkers(parallel, shard, shards int) int {
	if parallel != 0 {
		return parallel
	}
	procs := runtime.GOMAXPROCS(0)
	w := procs / shards
	if shard < procs%shards {
		w++
	}
	if w < 1 {
		w = 1
	}
	return w
}

// runShardParent runs a supervised multi-process sweep: stamp the
// checkpoint directory, supervise one child per shard (liveness
// tracking, classified retries with capped jittered backoff, host
// failover when a -hosts pool is given), salvage and rescue what dead
// shards left behind, merge by global index and print the standard
// scenario table. With -checkpoint the directory persists, so a killed
// parent rerun resumes instead of recomputing. With -chaos a seeded
// fault plan is injected into the children — the merged output must not
// change. SIGINT/SIGTERM and -timeout cancel the sweep cleanly: every
// child is terminated, the fsynced logs are merged, and the parent
// exits through the partial-report path with the exact missing-index
// list. See DESIGN.md §14–15.
func runShardParent(scenarioFile string, mode shardMode, opt harness.Options, parallel int) {
	specs, streaming, err := loadScenarioSpecs(scenarioFile, opt)
	check(err)
	dir := mode.Checkpoint
	if dir == "" {
		dir, err = os.MkdirTemp("", "sproutbench-shards-*")
		check(err)
		defer os.RemoveAll(dir)
	}
	exe, err := os.Executable()
	check(err)
	var tr dispatch.Transport = dispatch.LocalExec{}
	if mode.Transport != "" {
		tr, err = dispatch.NewCmdTransport(mode.Transport)
		check(err)
	}
	var plan fault.Plan
	if mode.Chaos != 0 {
		plan = fault.NewPlan(mode.Chaos, mode.Shards, mode.Retries, mode.Stall*3/2)
		fmt.Fprintf(os.Stderr, "sproutbench: chaos seed %d: %s\n", mode.Chaos, plan)
	}

	ctx := context.Background()
	var cancel context.CancelFunc
	if mode.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, mode.Timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()
	// A signal cancels the sweep's context: every attempt's select sees
	// Done, kills its child, and supervision falls through to the
	// partial merge. The logs are fsynced per record, so nothing the
	// children completed is lost to the termination.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		s, ok := <-sigc
		if !ok {
			return
		}
		fmt.Fprintf(os.Stderr, "sproutbench: %v: terminating shard children, merging what completed\n", s)
		cancel()
	}()

	start := time.Now()
	sum, err := supervise(ctx, superviseConfig{
		Exe:       exe,
		Scenario:  scenarioFile,
		Specs:     specs,
		Dir:       dir,
		Shards:    mode.Shards,
		Transport: tr,
		Hosts:     mode.Hosts,
		Retries:   mode.Retries,
		Stall:     mode.Stall,
		Opt:       opt,
		Parallel:  parallel,
		Plan:      plan,
		Rescue:    mode.Rescue,
		Log:       os.Stderr,
	})
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		reason := "interrupted"
		if errors.Is(err, context.DeadlineExceeded) {
			reason = fmt.Sprintf("timed out after %v", mode.Timeout)
		}
		fmt.Fprintf(os.Stderr, "sproutbench: sweep %s; %d of %d jobs completed (resume with the same -checkpoint)\n",
			reason, len(specs)-len(sum.Missing), len(specs))
		if len(sum.Missing) > 0 {
			fmt.Printf("partial: missing %d of %d jobs: %s\n", len(sum.Missing), len(specs), formatMissing(sum.Missing))
		}
		printScenarioResults(fmt.Sprintf("Scenarios from %s (%d shards, partial)", scenarioFile, mode.Shards), sum.Results)
		if !mode.Partial && len(sum.Missing) > 0 {
			fatalExit(1)
		}
		return
	}
	check(err)
	retried, dead := 0, 0
	for _, o := range sum.Outcomes {
		if o.Attempts > 1 || o.Err != nil {
			retried++
		}
		if o.Dead {
			dead++
		}
	}
	if retried > 0 || sum.Rescued > 0 {
		fmt.Fprintf(os.Stderr, "sproutbench: recovery: %d shard(s) retried or failed, %d dead, %d log(s) quarantined, %d job(s) rescued\n",
			retried, dead, sum.Quarantined, sum.Rescued)
	}
	if len(sum.Missing) > 0 && !mode.Partial {
		fmt.Fprintf(os.Stderr, "sproutbench: %d of %d jobs missing after supervision: %s (rerun with the same -checkpoint to resume, or -partial to merge what completed)\n",
			len(sum.Missing), len(specs), formatMissing(sum.Missing))
		fatalExit(1)
	}
	fmt.Fprintf(os.Stderr, "sharded: %d jobs across %d supervised child processes in %v; %d streaming scenario(s)\n",
		len(specs), mode.Shards, time.Since(start).Round(time.Millisecond), streaming)
	if len(sum.Missing) > 0 {
		fmt.Printf("partial: missing %d of %d jobs: %s\n", len(sum.Missing), len(specs), formatMissing(sum.Missing))
	}
	printScenarioResults(fmt.Sprintf("Scenarios from %s (%d shards)", scenarioFile, mode.Shards), sum.Results)
}

// abVariant is one side of an A/B comparison after its sweep completes.
type abVariant struct {
	Name    string
	File    string
	Runs    int
	TputP   []float64 // p50/p95/p99 throughput, kbps
	DelayP  []float64 // p50/p95/p99 delay95, ms
	Elapsed time.Duration
}

// rollup computes the per-variant quantiles from merged results.
func rollup(name, file string, results []scenario.Result, elapsed time.Duration) abVariant {
	tput := make([]float64, len(results))
	delay := make([]float64, len(results))
	for i, r := range results {
		tput[i] = r.Metrics.ThroughputBps / 1000
		delay[i] = float64(r.Delay95) / float64(time.Millisecond)
	}
	return abVariant{
		Name: name, File: file, Runs: len(results),
		TputP:   stats.Quantiles(tput, 0.5, 0.95, 0.99),
		DelayP:  stats.Quantiles(delay, 0.5, 0.95, 0.99),
		Elapsed: elapsed,
	}
}

// verdict renders the one-line comparison: A wins if its median
// throughput is no lower and its median delay no higher than B's (with at
// least one strict), and symmetrically for B; anything else is mixed.
func verdict(a, b abVariant) string {
	dt := pctDelta(a.TputP[0], b.TputP[0])
	dd := pctDelta(a.DelayP[0], b.DelayP[0])
	rel := fmt.Sprintf("A vs B: %+.1f%% p50 throughput, %+.1f%% p50 delay95", dt, dd)
	switch {
	case dt == 0 && dd == 0:
		return rel + " — tie"
	case dt >= 0 && dd <= 0:
		return rel + " — A wins"
	case dt <= 0 && dd >= 0:
		return rel + " — B wins"
	default:
		return rel + " — mixed (throughput and delay disagree)"
	}
}

func pctDelta(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return (a - b) / b * 100
}

// runAB executes the two variant grids as sharded sweeps (in-process
// shards; each variant's records round-trip the same JSONL codec the
// multi-process path uses) and prints the p50/p95/p99 rollup plus the
// verdict line.
func runAB(mode shardMode, opt harness.Options) {
	shards := mode.Shards
	if shards < 2 {
		shards = 2
	}
	variants := make([]abVariant, 2)
	for i, file := range mode.AB {
		name := string(rune('A' + i))
		specs, _, err := loadScenarioSpecs(file, opt)
		check(err)
		start := time.Now()
		results, st, err := scenario.RunSharded(context.Background(), specs, scenario.ShardedOptions{
			Shards: shards, Workers: opt.Workers,
		})
		check(err)
		elapsed := time.Since(start)
		fmt.Fprintf(os.Stderr, "variant %s (%s): %s\n", name, file, st)
		variants[i] = rollup(name, file, results, elapsed)
	}
	header(fmt.Sprintf("A/B: %s vs %s (%d in-process shards)", mode.AB[0], mode.AB[1], shards))
	fmt.Printf("%-2s %-32s %5s %27s %27s %10s\n",
		"", "variant", "runs", "tput p50/p95/p99 (kbps)", "delay95 p50/p95/p99 (ms)", "wall")
	for _, v := range variants {
		fmt.Printf("%-2s %-32s %5d %9.0f %8.0f %8.0f %9.0f %8.0f %8.0f %10v\n",
			v.Name, v.File, v.Runs,
			v.TputP[0], v.TputP[1], v.TputP[2],
			v.DelayP[0], v.DelayP[1], v.DelayP[2],
			v.Elapsed.Round(time.Millisecond))
	}
	fmt.Printf("verdict: %s\n", verdict(variants[0], variants[1]))
}

// printScenarioResults renders the standard scenario table — shared by
// the direct path (runScenarioFile) and the merged sharded path, so the
// byte-identical-results contract is visible at the CLI: the table from
// -shards n matches the table from a direct run, any n.
func printScenarioResults(title string, results []scenario.Result) {
	header(title)
	fmt.Printf("%-40s %12s %16s %6s %12s\n", "scenario", "tput (kbps)", "self-delay (ms)", "util", "delay95 (ms)")
	for _, r := range results {
		tputKbps := r.Metrics.ThroughputBps / 1000
		selfMs := fmt.Sprintf("%.0f", float64(r.Metrics.SelfInflicted95)/float64(time.Millisecond))
		util := fmt.Sprintf("%.2f", r.Metrics.Utilization)
		if r.Spec.Tunnel {
			// Tunnel runs have no link-level aggregate metrics (the
			// link carries Sprout frames, not client data): sum the
			// client flows for throughput and leave the trace-relative
			// columns blank rather than printing zeros that read as
			// perfect scores.
			tputKbps = 0
			for _, f := range r.Flows {
				tputKbps += f.ThroughputBps / 1000
			}
			selfMs, util = "-", "-"
		}
		fmt.Printf("%-40s %12.0f %16s %6s %12.0f\n",
			r.Spec.Label(), tputKbps, selfMs, util,
			float64(r.Delay95)/float64(time.Millisecond))
		if r.Spec.Cell != nil && len(r.Flows) > 0 {
			// Cell worlds report per-user distributions: one quantile
			// line over the attached users' throughput and delay tails.
			tput := make([]float64, len(r.Flows))
			delay := make([]float64, len(r.Flows))
			for i, f := range r.Flows {
				tput[i] = f.ThroughputBps / 1000
				delay[i] = float64(f.Delay95) / float64(time.Millisecond)
			}
			tp := stats.Quantiles(tput, 0.5, 0.95, 0.99)
			dp := stats.Quantiles(delay, 0.5, 0.95, 0.99)
			fmt.Printf("    users %-4d tput p50/p95/p99 %.0f/%.0f/%.0f kbps   delay95 p50/p95/p99 %.0f/%.0f/%.0f ms\n",
				len(r.Flows), tp[0], tp[1], tp[2], dp[0], dp[1], dp[2])
		}
		if len(r.Flows) > 1 {
			// Suppress the per-flow listing for crowded cells — the
			// quantile line above already summarizes the population.
			if r.Spec.Cell == nil || len(r.Flows) <= 8 {
				for _, f := range r.Flows {
					fmt.Printf("    flow %-3d %-12s %12.0f %29s %12.0f\n",
						f.Flow, f.Scheme, f.ThroughputBps/1000, "",
						float64(f.Delay95)/float64(time.Millisecond))
				}
			}
			fmt.Printf("    Jain fairness %.3f\n", r.JainIndex)
		}
		if r.Spec.Tunnel {
			fmt.Printf("    tunnel head drops: %d\n", r.HeadDrops)
		}
	}
}
