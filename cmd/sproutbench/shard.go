// Sharded sweeps from the CLI: -shard i/n runs one partition of a
// -scenario grid and streams JSONL; -shards n orchestrates n child
// processes (retrying failures with backoff) and merges their logs;
// -ab a.json,b.json fans two variant grids across shards and reports
// per-variant p50/p95/p99 rollups with a verdict. See DESIGN.md §13.
package main

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"sync"
	"time"

	"sprout/internal/engine"
	"sprout/internal/harness"
	"sprout/internal/scenario"
	"sprout/internal/stats"
)

// shardMode is the validated sharding configuration parsed from flags.
type shardMode struct {
	// Shard is set in worker mode (-shard i/n): run one partition.
	Shard *engine.Shard
	// Out is the worker's JSONL destination ("" = stdout).
	Out string
	// Shards > 1 is parent mode: fan out child processes and merge.
	Shards int
	// Checkpoint is the shard-log directory ("" = temp, discarded).
	Checkpoint string
	// AB holds the two variant scenario files in A/B mode.
	AB []string
}

// parseShardFlags validates the sharding flag combination, returning a
// one-line error (never panicking) on anything malformed — the CLI turns
// that into exit code 2.
func parseShardFlags(shardStr string, shards int, ab, scenarioFile, out, checkpoint string) (shardMode, error) {
	var m shardMode
	if shards < 0 {
		return m, fmt.Errorf("-shards must be >= 0, got %d", shards)
	}
	if ab != "" {
		parts := strings.Split(ab, ",")
		if len(parts) != 2 || strings.TrimSpace(parts[0]) == "" || strings.TrimSpace(parts[1]) == "" {
			return m, fmt.Errorf("-ab wants exactly two scenario files as \"specA.json,specB.json\", got %q", ab)
		}
		if shardStr != "" {
			return m, fmt.Errorf("-ab and -shard are mutually exclusive")
		}
		if scenarioFile != "" {
			return m, fmt.Errorf("-ab replaces -scenario; give the variant files to -ab only")
		}
		m.AB = []string{strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])}
		m.Shards = shards
		return m, nil
	}
	if shardStr != "" {
		sh, err := engine.ParseShard(shardStr)
		if err != nil {
			return m, err
		}
		if scenarioFile == "" {
			return m, fmt.Errorf("-shard runs one partition of a -scenario grid; -scenario is required")
		}
		if shards > 0 {
			return m, fmt.Errorf("-shard (worker mode) and -shards (parent mode) are mutually exclusive")
		}
		m.Shard = &sh
		m.Out = out
		return m, nil
	}
	if shards > 1 {
		if scenarioFile == "" {
			return m, fmt.Errorf("-shards fans a -scenario grid across child processes; -scenario is required")
		}
		m.Shards = shards
		m.Checkpoint = checkpoint
	}
	return m, nil
}

// loadScenarioSpecs loads a scenario file and fills unset per-spec fields
// from the CLI options — in the parent, the children and a direct run
// alike, so every participant compiles the identical grid (and therefore
// the identical checkpoint fingerprint).
func loadScenarioSpecs(path string, opt harness.Options) ([]scenario.Spec, int, error) {
	specs, err := scenario.LoadFile(path)
	if err != nil {
		return nil, 0, err
	}
	streaming := 0
	for i := range specs {
		if specs[i].Duration == 0 {
			specs[i].Duration = scenario.Duration(opt.Duration)
		}
		if specs[i].Skip == 0 {
			specs[i].Skip = scenario.Duration(opt.Skip)
		}
		if specs[i].Seed == 0 {
			specs[i].Seed = opt.Seed
		}
		if specs[i].Process != nil {
			streaming++
		}
	}
	return specs, streaming, nil
}

// runShardWorker is the child half of a multi-process sweep: compile the
// grid, run the owned partition, append records to the JSONL log. An
// existing log resumes — completed indexes are skipped, a torn tail from
// a killed predecessor is truncated — so the parent's retry loop never
// recomputes finished jobs.
func runShardWorker(scenarioFile string, sh engine.Shard, out string, opt harness.Options) {
	specs, _, err := loadScenarioSpecs(scenarioFile, opt)
	check(err)
	var done []int
	var w *engine.RecordWriter
	if out == "" {
		w = engine.NewRecordWriter(os.Stdout)
	} else {
		recs, f, err := engine.OpenShardLog(out)
		check(err)
		defer f.Close()
		done = engine.CompletedIndexes(recs)
		w = engine.NewRecordWriter(f)
	}
	st, err := scenario.RunShard(context.Background(), opt.Engine, specs, sh, done, w)
	check(err)
	fmt.Fprintf(os.Stderr, "shard %s: %d of %d jobs (%d resumed); %s\n",
		sh, sh.Size(len(specs)), len(specs), len(done), st)
}

// childWorkers splits the machine width across n children the same way
// the in-process runner does, so a fan-out saturates the host without
// oversubscribing it n times.
func childWorkers(parallel, shard, shards int) int {
	if parallel != 0 {
		return parallel
	}
	procs := runtime.GOMAXPROCS(0)
	w := procs / shards
	if shard < procs%shards {
		w++
	}
	if w < 1 {
		w = 1
	}
	return w
}

const (
	shardAttempts = 3
	shardBackoff  = 500 * time.Millisecond
)

// runShardParent orchestrates a multi-process sweep: stamp the checkpoint
// directory, spawn one child per shard (each appending to its own log),
// retry failed shards with doubling backoff, merge the logs by global
// index and print the standard scenario table. With -checkpoint the
// directory persists, so a killed parent rerun resumes instead of
// recomputing.
func runShardParent(scenarioFile string, mode shardMode, opt harness.Options, parallel int) {
	specs, streaming, err := loadScenarioSpecs(scenarioFile, opt)
	check(err)
	dir := mode.Checkpoint
	if dir == "" {
		dir, err = os.MkdirTemp("", "sproutbench-shards-*")
		check(err)
		defer os.RemoveAll(dir)
	}
	n := mode.Shards
	check(engine.EnsureManifest(dir, engine.Manifest{
		Fingerprint: scenario.Fingerprint(specs, n), Shards: n, Jobs: len(specs),
	}))

	exe, err := os.Executable()
	check(err)
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = runChildWithRetry(exe, scenarioFile, engine.Shard{Index: i, Count: n},
				engine.ShardLogPath(dir, i), opt, childWorkers(parallel, i, n))
		}()
	}
	wg.Wait()
	for _, err := range errs {
		check(err)
	}
	results, err := scenario.MergeShardLogs(dir, specs, n)
	check(err)
	fmt.Fprintf(os.Stderr, "sharded: %d jobs across %d child processes in %v; %d streaming scenario(s)\n",
		len(specs), n, time.Since(start).Round(time.Millisecond), streaming)
	printScenarioResults(fmt.Sprintf("Scenarios from %s (%d shards)", scenarioFile, n), results)
}

// runChildWithRetry launches one shard child, retrying on failure with
// doubling backoff. The child's own resume logic makes retries cheap:
// every attempt appends only the jobs its log is still missing.
func runChildWithRetry(exe, scenarioFile string, sh engine.Shard, logPath string, opt harness.Options, workers int) error {
	backoff := shardBackoff
	var lastErr error
	for attempt := 1; attempt <= shardAttempts; attempt++ {
		cmd := exec.Command(exe,
			"-scenario", scenarioFile,
			"-shard", sh.String(),
			"-out", logPath,
			"-duration", opt.Duration.String(),
			"-skip", opt.Skip.String(),
			"-seed", fmt.Sprint(opt.Seed),
			"-parallel", fmt.Sprint(workers),
		)
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err == nil {
			return nil
		} else {
			lastErr = fmt.Errorf("shard %s (attempt %d/%d): %w", sh, attempt, shardAttempts, err)
			fmt.Fprintf(os.Stderr, "sproutbench: %v; retrying in %v\n", lastErr, backoff)
		}
		time.Sleep(backoff)
		backoff *= 2
	}
	return lastErr
}

// abVariant is one side of an A/B comparison after its sweep completes.
type abVariant struct {
	Name    string
	File    string
	Runs    int
	TputP   []float64 // p50/p95/p99 throughput, kbps
	DelayP  []float64 // p50/p95/p99 delay95, ms
	Elapsed time.Duration
}

// rollup computes the per-variant quantiles from merged results.
func rollup(name, file string, results []scenario.Result, elapsed time.Duration) abVariant {
	tput := make([]float64, len(results))
	delay := make([]float64, len(results))
	for i, r := range results {
		tput[i] = r.Metrics.ThroughputBps / 1000
		delay[i] = float64(r.Delay95) / float64(time.Millisecond)
	}
	return abVariant{
		Name: name, File: file, Runs: len(results),
		TputP:   stats.Quantiles(tput, 0.5, 0.95, 0.99),
		DelayP:  stats.Quantiles(delay, 0.5, 0.95, 0.99),
		Elapsed: elapsed,
	}
}

// verdict renders the one-line comparison: A wins if its median
// throughput is no lower and its median delay no higher than B's (with at
// least one strict), and symmetrically for B; anything else is mixed.
func verdict(a, b abVariant) string {
	dt := pctDelta(a.TputP[0], b.TputP[0])
	dd := pctDelta(a.DelayP[0], b.DelayP[0])
	rel := fmt.Sprintf("A vs B: %+.1f%% p50 throughput, %+.1f%% p50 delay95", dt, dd)
	switch {
	case dt == 0 && dd == 0:
		return rel + " — tie"
	case dt >= 0 && dd <= 0:
		return rel + " — A wins"
	case dt <= 0 && dd >= 0:
		return rel + " — B wins"
	default:
		return rel + " — mixed (throughput and delay disagree)"
	}
}

func pctDelta(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return (a - b) / b * 100
}

// runAB executes the two variant grids as sharded sweeps (in-process
// shards; each variant's records round-trip the same JSONL codec the
// multi-process path uses) and prints the p50/p95/p99 rollup plus the
// verdict line.
func runAB(mode shardMode, opt harness.Options) {
	shards := mode.Shards
	if shards < 2 {
		shards = 2
	}
	variants := make([]abVariant, 2)
	for i, file := range mode.AB {
		name := string(rune('A' + i))
		specs, _, err := loadScenarioSpecs(file, opt)
		check(err)
		start := time.Now()
		results, st, err := scenario.RunSharded(context.Background(), specs, scenario.ShardedOptions{
			Shards: shards, Workers: opt.Workers,
		})
		check(err)
		elapsed := time.Since(start)
		fmt.Fprintf(os.Stderr, "variant %s (%s): %s\n", name, file, st)
		variants[i] = rollup(name, file, results, elapsed)
	}
	header(fmt.Sprintf("A/B: %s vs %s (%d in-process shards)", mode.AB[0], mode.AB[1], shards))
	fmt.Printf("%-2s %-32s %5s %27s %27s %10s\n",
		"", "variant", "runs", "tput p50/p95/p99 (kbps)", "delay95 p50/p95/p99 (ms)", "wall")
	for _, v := range variants {
		fmt.Printf("%-2s %-32s %5d %9.0f %8.0f %8.0f %9.0f %8.0f %8.0f %10v\n",
			v.Name, v.File, v.Runs,
			v.TputP[0], v.TputP[1], v.TputP[2],
			v.DelayP[0], v.DelayP[1], v.DelayP[2],
			v.Elapsed.Round(time.Millisecond))
	}
	fmt.Printf("verdict: %s\n", verdict(variants[0], variants[1]))
}

// printScenarioResults renders the standard scenario table — shared by
// the direct path (runScenarioFile) and the merged sharded path, so the
// byte-identical-results contract is visible at the CLI: the table from
// -shards n matches the table from a direct run, any n.
func printScenarioResults(title string, results []scenario.Result) {
	header(title)
	fmt.Printf("%-40s %12s %16s %6s %12s\n", "scenario", "tput (kbps)", "self-delay (ms)", "util", "delay95 (ms)")
	for _, r := range results {
		tputKbps := r.Metrics.ThroughputBps / 1000
		selfMs := fmt.Sprintf("%.0f", float64(r.Metrics.SelfInflicted95)/float64(time.Millisecond))
		util := fmt.Sprintf("%.2f", r.Metrics.Utilization)
		if r.Spec.Tunnel {
			// Tunnel runs have no link-level aggregate metrics (the
			// link carries Sprout frames, not client data): sum the
			// client flows for throughput and leave the trace-relative
			// columns blank rather than printing zeros that read as
			// perfect scores.
			tputKbps = 0
			for _, f := range r.Flows {
				tputKbps += f.ThroughputBps / 1000
			}
			selfMs, util = "-", "-"
		}
		fmt.Printf("%-40s %12.0f %16s %6s %12.0f\n",
			r.Spec.Label(), tputKbps, selfMs, util,
			float64(r.Delay95)/float64(time.Millisecond))
		if len(r.Flows) > 1 {
			for _, f := range r.Flows {
				fmt.Printf("    flow %-3d %-12s %12.0f %29s %12.0f\n",
					f.Flow, f.Scheme, f.ThroughputBps/1000, "",
					float64(f.Delay95)/float64(time.Millisecond))
			}
			fmt.Printf("    Jain fairness %.3f\n", r.JainIndex)
		}
		if r.Spec.Tunnel {
			fmt.Printf("    tunnel head drops: %d\n", r.HeadDrops)
		}
	}
}
