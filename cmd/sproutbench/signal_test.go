package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// TestShardParentInterruptPartial drives the real CLI: a supervised
// sweep interrupted by SIGINT must terminate its children, merge what
// their fsynced logs hold, print the exact missing-index report, and —
// under -partial — exit 0. The test binary serves as the parent (and,
// transitively, its children) through the TestMain reroute.
func TestShardParentInterruptPartial(t *testing.T) {
	if testing.Short() {
		t.Skip("execs a supervised sweep and waits on signal delivery; skipped with -short")
	}
	// No duration in the file: the CLI's -duration sets it, and a long
	// virtual duration keeps the sweep busy until the signal lands.
	spec := `{
	  "defaults": {"link": "Verizon LTE", "skip": "250ms", "seed": 7},
	  "scenarios": [
	    {"name": "cubic down", "scheme": "cubic"},
	    {"name": "sprout down", "scheme": "sprout"},
	    {"name": "cubic up", "scheme": "cubic", "direction": "up"},
	    {"name": "vegas down", "scheme": "vegas"}
	  ]
	}`
	scenarioPath := filepath.Join(t.TempDir(), "long.json")
	if err := os.WriteFile(scenarioPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	cmd := exec.Command(os.Args[0],
		"-scenario", scenarioPath, "-shards", "2", "-checkpoint", dir,
		"-partial", "-duration", "600s", "-parallel", "1")
	cmd.Env = append(os.Environ(), "SPROUTBENCH_CHILD=1")
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Give the parent time to install its handler and launch children,
	// then interrupt mid-sweep. 600 virtual seconds keep the children far
	// from done this early.
	time.Sleep(600 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("interrupted -partial sweep exited %v\nstderr:\n%s", err, stderr.String())
		}
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("parent never exited after SIGINT\nstderr:\n%s", stderr.String())
	}
	if !bytes.Contains(stderr.Bytes(), []byte("interrupted")) {
		t.Fatalf("stderr does not report the interruption:\n%s", stderr.String())
	}
	if !bytes.Contains(stdout.Bytes(), []byte("partial: missing")) {
		t.Fatalf("stdout lacks the missing-index report:\nstdout:\n%s\nstderr:\n%s", stdout.String(), stderr.String())
	}
}
