// Supervision over the loopback transport: real worker processes on a
// simulated multi-host fabric, exercising the full remote protocol —
// push, start, offset pull, mirroring, host health, failover — with
// hosts dying mid-sweep. The acceptance bar everywhere is the same as
// the local chaos soak's: the merged JSONL is byte-identical to the
// fault-free run.
package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"sprout/internal/dispatch"
	"sprout/internal/fault"
)

// loopbackConfig is chaosConfig rewired onto a loopback host pool.
func loopbackConfig(t *testing.T, tr dispatch.Transport, hosts []string) superviseConfig {
	t.Helper()
	scenarioPath := chaosScenario(t)
	specs, _, err := loadScenarioSpecs(scenarioPath, chaosOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg := chaosConfig(t, scenarioPath, specs, t.TempDir(), nil)
	cfg.Transport = tr
	cfg.Hosts = hosts
	return cfg
}

// TestSuperviseLoopbackClean: the remote protocol at rest — push, start,
// offset pull, mirror, drain — reproduces the direct run byte for byte
// across a two-host pool, with no recovery machinery involved.
func TestSuperviseLoopbackClean(t *testing.T) {
	cfg := loopbackConfig(t, dispatch.NewLoopback(), []string{"h0", "h1"})
	sum, err := supervise(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Missing) > 0 || sum.Rescued != 0 {
		t.Fatalf("clean loopback sweep: missing %v, rescued %d", sum.Missing, sum.Rescued)
	}
	for _, o := range sum.Outcomes {
		if o.Attempts != 1 || o.Failovers != 0 || o.Dead {
			t.Fatalf("clean sweep outcome %+v", o)
		}
	}
	if got := chaosMergedBytes(t, sum.Results); !bytes.Equal(got, chaosReference(t, cfg.Specs)) {
		t.Fatal("loopback merge differs from the fault-free bytes")
	}
}

// TestSuperviseLoopbackDeadHostFailover is the failover acceptance: with
// one host dead before the sweep starts, every shard placed on it must
// fail over to the survivor and complete there — zero jobs rescued, so
// the recovery demonstrably came from re-dispatch, not from the
// in-process last resort.
func TestSuperviseLoopbackDeadHostFailover(t *testing.T) {
	lb := dispatch.NewLoopback()
	lb.KillHost("h0")
	cfg := loopbackConfig(t, lb, []string{"h0", "h1"})
	sum, err := supervise(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Missing) > 0 {
		t.Fatalf("missing with a live host remaining: %v", sum.Missing)
	}
	if sum.Rescued != 0 {
		t.Fatalf("rescued %d jobs; a dead host must be handled by failover, not rescue", sum.Rescued)
	}
	failovers := 0
	for _, o := range sum.Outcomes {
		failovers += o.Failovers
		if o.Dead {
			t.Fatalf("shard %d died with host h1 healthy: %v", o.Shard, o.Err)
		}
	}
	if failovers == 0 {
		t.Fatal("no failovers recorded; the dead host was never even tried")
	}
	if got := chaosMergedBytes(t, sum.Results); !bytes.Equal(got, chaosReference(t, cfg.Specs)) {
		t.Fatal("failover merge differs from the fault-free bytes")
	}
}

// TestSuperviseLoopbackMidSweepKill: a host killed while its workers are
// mid-shard — via the HostDown network fault, exactly as the soak draws
// it — loses those attempts, and the shards still converge on the
// survivor with the records mirrored before the kill preserved. No
// rescue: the mirror plus re-dispatch carry the whole recovery.
func TestSuperviseLoopbackMidSweepKill(t *testing.T) {
	lb := dispatch.NewLoopback()
	plan := fault.NetPlan{"h0": {{Kind: fault.HostDown, After: 3}}}
	cfg := loopbackConfig(t, dispatch.WithNetFaults(lb, plan, lb.KillHost), []string{"h0", "h1"})
	// Three shards across two hosts: the kill strands work wherever the
	// pool placed it. Simulated jobs outrun wall-clock polling, so a
	// mid-stream stall holds each worker in flight long enough that pull
	// 3 lands mid-sweep.
	cfg.Shards = 3
	cfg.Plan = fault.Plan{
		0: {{Kind: fault.Stall, After: 1, For: 300 * time.Millisecond}},
		1: {{Kind: fault.Stall, After: 1, For: 300 * time.Millisecond}},
		2: {{Kind: fault.Stall, After: 1, For: 300 * time.Millisecond}},
	}
	sum, err := supervise(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Missing) > 0 {
		t.Fatalf("missing after mid-sweep kill: %v", sum.Missing)
	}
	if sum.Rescued != 0 {
		t.Fatalf("rescued %d jobs; the mirror + failover should have recovered everything", sum.Rescued)
	}
	if !lb.Down("h0") {
		t.Fatal("the HostDown fault never fired")
	}
	recovered := 0
	for _, o := range sum.Outcomes {
		if o.Attempts > 1 || o.Failovers > 0 {
			recovered++
		}
	}
	if recovered == 0 {
		t.Fatal("no shard recorded a retry or failover; the kill cost nothing?")
	}
	if got := chaosMergedBytes(t, sum.Results); !bytes.Equal(got, chaosReference(t, cfg.Specs)) {
		t.Fatal("mid-sweep-kill merge differs from the fault-free bytes")
	}
}

// TestSuperviseLoopbackTotalLossRescue: when every host dies, failover
// has nowhere to go — the shards are declared dead and the in-process
// rescue (the documented last resort) recomputes what the mirrors do
// not hold, still byte-identically.
func TestSuperviseLoopbackTotalLossRescue(t *testing.T) {
	lb := dispatch.NewLoopback()
	plan := fault.NetPlan{
		"h0": {{Kind: fault.HostDown, After: 0}},
		"h1": {{Kind: fault.HostDown, After: 0}},
	}
	cfg := loopbackConfig(t, dispatch.WithNetFaults(lb, plan, lb.KillHost), []string{"h0", "h1"})
	sum, err := supervise(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Missing) > 0 {
		t.Fatalf("missing after rescue: %v", sum.Missing)
	}
	if sum.Rescued == 0 {
		t.Fatal("every host died yet nothing was rescued; where did the records come from?")
	}
	dead := 0
	for _, o := range sum.Outcomes {
		if o.Dead {
			dead++
		}
	}
	if dead == 0 {
		t.Fatal("no shard declared dead with the whole pool down")
	}
	if got := chaosMergedBytes(t, sum.Results); !bytes.Equal(got, chaosReference(t, cfg.Specs)) {
		t.Fatal("total-loss rescue merge differs from the fault-free bytes")
	}
}

// TestSuperviseLoopbackNetChaosSoak is the tentpole's network acceptance:
// seeded plans drawing connection drops, slow streams, partial pulls,
// duplicated replays and mid-sweep host kills — layered over the process
// fault plans the local soak uses — must always merge byte-identical to
// the fault-free run, and across the band the generator must actually
// draw the network fault space (≥3 kinds and at least one host kill).
func TestSuperviseLoopbackNetChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("net chaos soak execs 12 supervised sweeps; skipped with -short")
	}
	scenarioPath := chaosScenario(t)
	specs, _, err := loadScenarioSpecs(scenarioPath, chaosOptions())
	if err != nil {
		t.Fatal(err)
	}
	ref := chaosReference(t, specs)
	hosts := []string{"h0", "h1", "h2"}

	const soakRuns = 12
	kindsDrawn := map[fault.Kind]bool{}
	for seed := int64(1); seed <= soakRuns; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			netPlan := fault.NewNetPlan(seed, hosts, 1)
			for k := range netPlan.Kinds() {
				kindsDrawn[k] = true
			}
			procPlan := fault.NewPlan(seed, 2, 3, 1500*time.Millisecond)
			lb := dispatch.NewLoopback()
			cfg := chaosConfig(t, scenarioPath, specs, t.TempDir(), procPlan)
			cfg.Transport = dispatch.WithNetFaults(lb, netPlan, lb.KillHost)
			cfg.Hosts = hosts
			sum, err := supervise(context.Background(), cfg)
			if err != nil {
				t.Fatalf("seed %d (net %s; proc %s): %v", seed, netPlan, procPlan, err)
			}
			if len(sum.Missing) > 0 {
				t.Fatalf("seed %d (net %s; proc %s): missing %v", seed, netPlan, procPlan, sum.Missing)
			}
			if got := chaosMergedBytes(t, sum.Results); !bytes.Equal(got, ref) {
				t.Fatalf("seed %d (net %s; proc %s): merged bytes differ from the fault-free run", seed, netPlan, procPlan)
			}
		})
	}
	distinct := 0
	for range kindsDrawn {
		distinct++
	}
	if distinct < 3 {
		t.Fatalf("the soak drew only %d network fault kinds (%v); want at least 3", distinct, kindsDrawn)
	}
	if !kindsDrawn[fault.HostDown] {
		t.Fatal("the soak never killed a host; the failover path went unexercised")
	}
	t.Logf("net chaos soak: %d seeds, fault kinds drawn: %v", soakRuns, kindsDrawn)
}

// TestSuperviseTimeout is the -timeout contract at the supervise layer: an
// expired deadline cancels every attempt, the summary still carries what
// completed plus the exact missing-index complement, and rescue is
// skipped (the sweep was cut short, not damaged).
func TestSuperviseTimeout(t *testing.T) {
	cfg := loopbackConfig(t, nil, nil) // default LocalExec, implicit host
	// Hold each worker mid-shard well past the deadline, so the sweep is
	// guaranteed to be cut short with work genuinely outstanding.
	cfg.Plan = fault.Plan{
		0: {{Kind: fault.Stall, After: 1, For: 5 * time.Second}},
		1: {{Kind: fault.Stall, After: 1, For: 5 * time.Second}},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	sum, err := supervise(ctx, cfg)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired sweep returned %v, want DeadlineExceeded", err)
	}
	if sum.Rescued != 0 {
		t.Fatalf("a timed-out sweep rescued %d jobs; rescue must be skipped on cancellation", sum.Rescued)
	}
	if len(sum.Results)+len(sum.Missing) != len(cfg.Specs) {
		t.Fatalf("results (%d) + missing (%d) do not partition the %d-job grid",
			len(sum.Results), len(sum.Missing), len(cfg.Specs))
	}
	if len(sum.Missing) == 0 {
		t.Fatal("both workers were stalled past the deadline yet nothing is missing")
	}
	// The report is the exact complement of the merged indexes.
	missing := map[int]bool{}
	for _, idx := range sum.Missing {
		if idx < 0 || idx >= len(cfg.Specs) {
			t.Fatalf("missing index %d out of range", idx)
		}
		missing[idx] = true
	}
	if len(missing) != len(sum.Missing) {
		t.Fatalf("missing list has duplicates: %v", sum.Missing)
	}
}

// TestSuperviseRetriesZeroClamp: -retries 0 means the default at the CLI,
// but a zero reaching supervise clamps to one attempt — the shard gets
// exactly one try, dies on its crash, and rescue still completes the
// grid.
func TestSuperviseRetriesZeroClamp(t *testing.T) {
	scenarioPath := chaosScenario(t)
	specs, _, err := loadScenarioSpecs(scenarioPath, chaosOptions())
	if err != nil {
		t.Fatal(err)
	}
	plan := fault.Plan{0: {{Kind: fault.Crash, After: 0}}}
	cfg := chaosConfig(t, scenarioPath, specs, t.TempDir(), plan)
	cfg.Retries = 0
	sum, err := supervise(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := sum.Outcomes[0]; !got.Dead || got.Attempts != 1 {
		t.Fatalf("retries=0 outcome %+v, want dead after exactly 1 attempt", got)
	}
	if len(sum.Missing) > 0 {
		t.Fatalf("missing after rescue: %v", sum.Missing)
	}
	if got := chaosMergedBytes(t, sum.Results); !bytes.Equal(got, chaosReference(t, specs)) {
		t.Fatal("merge differs from the fault-free bytes")
	}
}
