// Chaos tests: the supervisor run against its own CLI under seeded
// fault plans. The test binary doubles as the shard child — TestMain
// reroutes to main() when SPROUTBENCH_CHILD is set — so every test
// exercises the real exec/flag/env/exit path, not a mock.
package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sprout/internal/fault"
	"sprout/internal/harness"
	"sprout/internal/scenario"
)

func TestMain(m *testing.M) {
	if os.Getenv("SPROUTBENCH_CHILD") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// chaosScenario writes the soak grid: six specs, short but long enough
// that every shard writes multiple records (fault boundaries up to
// after=2 must be reachable with 2 shards × 3 jobs).
func chaosScenario(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "chaos.json")
	spec := `{
	  "defaults": {"link": "Verizon LTE", "duration": "1s", "skip": "250ms", "seed": 7},
	  "scenarios": [
	    {"name": "cubic down", "scheme": "cubic"},
	    {"name": "sprout down", "scheme": "sprout"},
	    {"name": "sprout up", "scheme": "sprout", "direction": "up"},
	    {"name": "sprout-ewma down", "scheme": "sprout-ewma"},
	    {"name": "cubic up", "scheme": "cubic", "direction": "up"},
	    {"name": "vegas down", "scheme": "vegas"}
	  ]
	}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func chaosOptions() harness.Options {
	return harness.Options{Duration: time.Second, Skip: 250 * time.Millisecond, Seed: 7}
}

// chaosReference computes the fault-free merged byte stream the chaos
// runs must reproduce.
func chaosReference(t *testing.T, specs []scenario.Spec) []byte {
	t.Helper()
	results, _, err := scenario.RunSharded(context.Background(), specs, scenario.ShardedOptions{Shards: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return chaosMergedBytes(t, results)
}

func chaosMergedBytes(t *testing.T, results []scenario.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := scenario.WriteMergedRecords(&buf, results); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// chaosConfig is the supervision setup every chaos test shares: the test
// binary as child, fast polling and backoff, a deadline that detects
// stalls quickly. Stall kills triggered spuriously on a slow machine are
// safe — they classify transient, and a shard lost to them routes
// through rescue, which preserves the byte-identity being asserted.
func chaosConfig(t *testing.T, scenarioPath string, specs []scenario.Spec, dir string, plan fault.Plan) superviseConfig {
	t.Helper()
	return superviseConfig{
		Exe:         os.Args[0],
		ExtraEnv:    []string{"SPROUTBENCH_CHILD=1"},
		Scenario:    scenarioPath,
		Specs:       specs,
		Dir:         dir,
		Shards:      2,
		Retries:     3,
		Stall:       time.Second,
		Poll:        25 * time.Millisecond,
		BackoffBase: 5 * time.Millisecond,
		BackoffCap:  40 * time.Millisecond,
		Opt:         chaosOptions(),
		Parallel:    1,
		Plan:        plan,
		Rescue:      true,
		Log:         testLogWriter{t},
	}
}

type testLogWriter struct{ t *testing.T }

func (w testLogWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}

// TestChaosSoak is the tentpole acceptance: across 20 seeded fault
// plans — crashes, stalls, torn tails, corruption, abrupt exits, slow
// starts — the supervised, resumed and rescued merged JSONL must be
// byte-identical to the fault-free run, every time.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak execs 20 supervised sweeps; skipped with -short")
	}
	scenarioPath := chaosScenario(t)
	specs, _, err := loadScenarioSpecs(scenarioPath, chaosOptions())
	if err != nil {
		t.Fatal(err)
	}
	ref := chaosReference(t, specs)

	const soakRuns = 20
	rescued, faulted := 0, 0
	for seed := int64(1); seed <= soakRuns; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			plan := fault.NewPlan(seed, 2, 3, 1500*time.Millisecond)
			if len(plan) > 0 {
				faulted++
			}
			dir := t.TempDir()
			sum, err := supervise(context.Background(), chaosConfig(t, scenarioPath, specs, dir, plan))
			if err != nil {
				t.Fatalf("seed %d (%s): %v", seed, plan, err)
			}
			if len(sum.Missing) > 0 {
				t.Fatalf("seed %d (%s): %d jobs missing after rescue: %v", seed, plan, len(sum.Missing), sum.Missing)
			}
			if sum.Rescued > 0 {
				rescued++
			}
			if got := chaosMergedBytes(t, sum.Results); !bytes.Equal(got, ref) {
				t.Fatalf("seed %d (%s): merged bytes differ from the fault-free run\n got %d bytes\nwant %d bytes", seed, plan, len(got), len(ref))
			}
		})
	}
	if faulted == 0 {
		t.Fatal("all 20 plans were clean; the soak exercised nothing")
	}
	t.Logf("chaos soak: %d/%d plans injected faults, %d runs needed rescue", faulted, soakRuns, rescued)
}

// TestSuperviseRescueReassignsDeadShard forces the rescue path
// deterministically: every attempt of shard 0 crashes before its first
// record, so its whole job set must be recomputed — and the merge must
// still match the fault-free bytes.
func TestSuperviseRescueReassignsDeadShard(t *testing.T) {
	scenarioPath := chaosScenario(t)
	specs, _, err := loadScenarioSpecs(scenarioPath, chaosOptions())
	if err != nil {
		t.Fatal(err)
	}
	plan := fault.Plan{0: {
		{Kind: fault.Crash, After: 0},
		{Kind: fault.Crash, After: 0},
		{Kind: fault.Crash, After: 0},
	}}
	sum, err := supervise(context.Background(), chaosConfig(t, scenarioPath, specs, t.TempDir(), plan))
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Outcomes[0].Dead {
		t.Fatal("shard 0 survived three guaranteed crashes")
	}
	if sum.Outcomes[0].Attempts != 3 {
		t.Fatalf("shard 0 used %d attempts, want the full retry budget of 3", sum.Outcomes[0].Attempts)
	}
	if sum.Outcomes[1].Dead || sum.Outcomes[1].Err != nil {
		t.Fatalf("healthy shard 1 reported %+v", sum.Outcomes[1])
	}
	if want := 3; sum.Rescued != want { // shard 0 of 2 owns indexes 0,2,4
		t.Fatalf("rescued %d jobs, want %d", sum.Rescued, want)
	}
	if len(sum.Missing) > 0 {
		t.Fatalf("missing after rescue: %v", sum.Missing)
	}
	if got := chaosMergedBytes(t, sum.Results); !bytes.Equal(got, chaosReference(t, specs)) {
		t.Fatal("rescued merge differs from the fault-free bytes")
	}
}

// TestSupervisePartialReportsMissing is the -partial acceptance: with
// rescue disabled, a dead shard's jobs surface as the exact missing
// global indexes, and everything else still merges.
func TestSupervisePartialReportsMissing(t *testing.T) {
	scenarioPath := chaosScenario(t)
	specs, _, err := loadScenarioSpecs(scenarioPath, chaosOptions())
	if err != nil {
		t.Fatal(err)
	}
	plan := fault.Plan{0: {
		{Kind: fault.Crash, After: 0},
		{Kind: fault.Crash, After: 0},
		{Kind: fault.Crash, After: 0},
	}}
	cfg := chaosConfig(t, scenarioPath, specs, t.TempDir(), plan)
	cfg.Rescue = false
	sum, err := supervise(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := "[0 2 4]"; formatMissing(sum.Missing) != want {
		t.Fatalf("missing = %v, want exactly shard 0's job set %s", sum.Missing, want)
	}
	if sum.Rescued != 0 {
		t.Fatalf("rescued %d jobs with rescue disabled", sum.Rescued)
	}
	if len(sum.Results) != len(specs)-3 {
		t.Fatalf("partial merge carried %d results, want %d", len(sum.Results), len(specs)-3)
	}
}

// TestSuperviseQuarantinesCorruptLog: a corrupt record is caught by the
// supervisor's own checkpoint pull on the attempt that wrote it
// (permanent classification — no retry burns against damaged bytes),
// the damaged log is quarantined down to its valid prefix, and only the
// genuinely lost jobs are rescued.
func TestSuperviseQuarantinesCorruptLog(t *testing.T) {
	scenarioPath := chaosScenario(t)
	specs, _, err := loadScenarioSpecs(scenarioPath, chaosOptions())
	if err != nil {
		t.Fatal(err)
	}
	plan := fault.Plan{0: {{Kind: fault.Corrupt, After: 1}}}
	dir := t.TempDir()
	sum, err := supervise(context.Background(), chaosConfig(t, scenarioPath, specs, dir, plan))
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Outcomes[0].Dead {
		t.Fatal("shard 0 survived a corrupt log")
	}
	if sum.Outcomes[0].Attempts != 1 {
		t.Fatalf("shard 0 used %d attempts, want 1 (the pull detects corruption on the attempt that wrote it)", sum.Outcomes[0].Attempts)
	}
	if sum.Quarantined != 1 {
		t.Fatalf("quarantined %d logs, want 1", sum.Quarantined)
	}
	if want := 2; sum.Rescued != want { // 1 of shard 0's 3 jobs survived in the salvaged prefix
		t.Fatalf("rescued %d jobs, want %d", sum.Rescued, want)
	}
	if got := chaosMergedBytes(t, sum.Results); !bytes.Equal(got, chaosReference(t, specs)) {
		t.Fatal("merge after quarantine differs from the fault-free bytes")
	}
}

// TestSuperviseKillsStalledShard: a child alive but frozen past the
// stall deadline is killed and the retry resumes from its checkpoint.
func TestSuperviseKillsStalledShard(t *testing.T) {
	scenarioPath := chaosScenario(t)
	specs, _, err := loadScenarioSpecs(scenarioPath, chaosOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The stall sleeps far beyond the deadline: only the supervisor's
	// kill, not the injector's patience, can end the attempt promptly.
	plan := fault.Plan{1: {{Kind: fault.Stall, After: 1, For: 5 * time.Minute}}}
	cfg := chaosConfig(t, scenarioPath, specs, t.TempDir(), plan)
	cfg.Stall = 500 * time.Millisecond
	start := time.Now()
	sum, err := supervise(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Minute {
		t.Fatalf("supervision took %v; the stall was waited out, not detected", elapsed)
	}
	if sum.Outcomes[1].Attempts < 2 {
		t.Fatalf("stalled shard finished in %d attempt(s); the stall kill never happened", sum.Outcomes[1].Attempts)
	}
	if len(sum.Missing) > 0 {
		t.Fatalf("missing: %v", sum.Missing)
	}
	if got := chaosMergedBytes(t, sum.Results); !bytes.Equal(got, chaosReference(t, specs)) {
		t.Fatal("merge after stall kill differs from the fault-free bytes")
	}
}
