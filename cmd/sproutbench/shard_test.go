package main

import (
	"strings"
	"testing"
	"time"

	"sprout/internal/engine"
)

// TestParseShardFlags is the satellite contract: every malformed flag
// combination yields a one-line error (for exit 2), never a panic, and
// the valid combinations select the right mode.
func TestParseShardFlags(t *testing.T) {
	cases := []struct {
		name                           string
		in                             shardFlagInputs
		wantErr                        string // substring, "" = success
		wantWorker, wantParent, wantAB bool
	}{
		{name: "default", wantErr: ""},
		{name: "worker", in: shardFlagInputs{Shard: "1/4", Scenario: "s.json", Out: "x.jsonl"}, wantWorker: true},
		{name: "worker stdout", in: shardFlagInputs{Shard: "0/2", Scenario: "s.json"}, wantWorker: true},
		{name: "parent", in: shardFlagInputs{Shards: 4, Scenario: "s.json"}, wantParent: true},
		{name: "parent checkpointed", in: shardFlagInputs{Shards: 2, Scenario: "s.json", Checkpoint: "ck"}, wantParent: true},
		{name: "parent chaos partial", in: shardFlagInputs{Shards: 2, Scenario: "s.json", Chaos: 7, Partial: true}, wantParent: true},
		{name: "parent hosts", in: shardFlagInputs{Shards: 2, Scenario: "s.json", Hosts: "a,b"}, wantParent: true},
		{name: "parent hosts transport", in: shardFlagInputs{Shards: 2, Scenario: "s.json", Hosts: "a,b", Transport: "ssh {host} -- {exe}"}, wantParent: true},
		{name: "parent timeout", in: shardFlagInputs{Shards: 2, Scenario: "s.json", Timeout: time.Minute}, wantParent: true},
		{name: "single shard is direct", in: shardFlagInputs{Shards: 1, Scenario: "s.json"}},
		{name: "ab", in: shardFlagInputs{AB: "a.json,b.json"}, wantAB: true},
		{name: "ab sharded", in: shardFlagInputs{AB: "a.json,b.json", Shards: 4}, wantAB: true},

		{name: "bad shard syntax", in: shardFlagInputs{Shard: "nope", Scenario: "s.json"}, wantErr: "shard"},
		{name: "shard out of range", in: shardFlagInputs{Shard: "4/4", Scenario: "s.json"}, wantErr: "outside"},
		{name: "shard needs scenario", in: shardFlagInputs{Shard: "0/2"}, wantErr: "-scenario is required"},
		{name: "shard vs shards", in: shardFlagInputs{Shard: "0/2", Shards: 2, Scenario: "s.json"}, wantErr: "mutually exclusive"},
		{name: "negative shards", in: shardFlagInputs{Shards: -1}, wantErr: ">= 0"},
		{name: "negative retries", in: shardFlagInputs{Shards: 2, Scenario: "s.json", Retries: -1}, wantErr: "-retries"},
		{name: "negative stall", in: shardFlagInputs{Shards: 2, Scenario: "s.json", Stall: -time.Second}, wantErr: "-stall"},
		{name: "shards need scenario", in: shardFlagInputs{Shards: 2}, wantErr: "-scenario is required"},
		{name: "chaos needs parent", in: shardFlagInputs{Scenario: "s.json", Chaos: 7}, wantErr: "parent mode"},
		{name: "chaos in worker", in: shardFlagInputs{Shard: "0/2", Scenario: "s.json", Chaos: 7}, wantErr: "parent mode"},
		{name: "partial needs parent", in: shardFlagInputs{Scenario: "s.json", Partial: true}, wantErr: "parent mode"},
		{name: "hosts need parent", in: shardFlagInputs{Scenario: "s.json", Hosts: "a,b"}, wantErr: "parent mode"},
		{name: "hosts in worker", in: shardFlagInputs{Shard: "0/2", Scenario: "s.json", Hosts: "a"}, wantErr: "parent mode"},
		{name: "transport needs parent", in: shardFlagInputs{Scenario: "s.json", Transport: "ssh {host} {exe}"}, wantErr: "parent mode"},
		{name: "timeout needs parent", in: shardFlagInputs{Scenario: "s.json", Timeout: time.Second}, wantErr: "parent mode"},
		{name: "timeout in ab", in: shardFlagInputs{AB: "a.json,b.json", Shards: 2, Timeout: time.Second}, wantErr: "parent mode"},
		{name: "transport needs hosts", in: shardFlagInputs{Shards: 2, Scenario: "s.json", Transport: "ssh {host} {exe}"}, wantErr: "-hosts is required"},
		{name: "empty host name", in: shardFlagInputs{Shards: 2, Scenario: "s.json", Hosts: "a,,b"}, wantErr: "empty host"},
		{name: "negative timeout", in: shardFlagInputs{Shards: 2, Scenario: "s.json", Timeout: -time.Second}, wantErr: "-timeout"},
		{name: "chaos in ab", in: shardFlagInputs{AB: "a.json,b.json", Shards: 2, Chaos: 7}, wantErr: "parent mode"},
		{name: "ab wants two files", in: shardFlagInputs{AB: "a.json"}, wantErr: "exactly two"},
		{name: "ab three files", in: shardFlagInputs{AB: "a,b,c"}, wantErr: "exactly two"},
		{name: "ab empty side", in: shardFlagInputs{AB: "a.json,"}, wantErr: "exactly two"},
		{name: "ab vs shard", in: shardFlagInputs{AB: "a.json,b.json", Shard: "0/2"}, wantErr: "mutually exclusive"},
		{name: "ab vs scenario", in: shardFlagInputs{AB: "a.json,b.json", Scenario: "s.json"}, wantErr: "-ab replaces -scenario"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			mode, err := parseShardFlags(c.in)
			if c.wantErr != "" {
				if err == nil {
					t.Fatalf("got mode %+v, want error containing %q", mode, c.wantErr)
				}
				if !strings.Contains(err.Error(), c.wantErr) {
					t.Fatalf("error %q does not contain %q", err, c.wantErr)
				}
				if strings.Contains(err.Error(), "\n") {
					t.Fatalf("error %q is not one line", err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got := mode.Shard != nil; got != c.wantWorker {
				t.Errorf("worker mode = %v, want %v", got, c.wantWorker)
			}
			if got := mode.Shards > 1 && mode.AB == nil; got != c.wantParent {
				t.Errorf("parent mode = %v, want %v", got, c.wantParent)
			}
			if got := len(mode.AB) == 2; got != c.wantAB {
				t.Errorf("ab mode = %v, want %v", got, c.wantAB)
			}
		})
	}
}

func TestParseShardFlagsWorkerFields(t *testing.T) {
	mode, err := parseShardFlags(shardFlagInputs{Shard: "2/3", Scenario: "s.json", Out: "out.jsonl"})
	if err != nil {
		t.Fatal(err)
	}
	if *mode.Shard != (engine.Shard{Index: 2, Count: 3}) {
		t.Fatalf("shard = %v, want 2/3", mode.Shard)
	}
	if mode.Out != "out.jsonl" {
		t.Fatalf("out = %q", mode.Out)
	}
}

// TestParseShardFlagsParentDefaults: parent mode normalizes the
// supervision knobs so zero values never mean "no retries" or "no stall
// deadline".
func TestParseShardFlagsParentDefaults(t *testing.T) {
	mode, err := parseShardFlags(shardFlagInputs{Shards: 2, Scenario: "s.json", Rescue: true})
	if err != nil {
		t.Fatal(err)
	}
	if mode.Retries != 3 {
		t.Fatalf("Retries = %d, want default 3", mode.Retries)
	}
	if mode.Stall != 2*time.Minute {
		t.Fatalf("Stall = %v, want default 2m", mode.Stall)
	}
	if !mode.Rescue {
		t.Fatal("Rescue flag not carried into parent mode")
	}
	mode, err = parseShardFlags(shardFlagInputs{Shards: 2, Scenario: "s.json", Retries: 5, Stall: 7 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if mode.Retries != 5 || mode.Stall != 7*time.Second {
		t.Fatalf("explicit knobs not forwarded: %+v", mode)
	}
}

// TestParseShardFlagsDispatchFields: the remote-dispatch knobs reach the
// mode struct with host names trimmed of the whitespace a hand-typed
// -hosts list accumulates.
func TestParseShardFlagsDispatchFields(t *testing.T) {
	mode, err := parseShardFlags(shardFlagInputs{
		Shards: 2, Scenario: "s.json",
		Hosts: " alpha , beta,gamma ", Transport: "ssh {host} -- {exe}", Timeout: 90 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := strings.Join(mode.Hosts, "|"), "alpha|beta|gamma"; got != want {
		t.Fatalf("hosts = %q, want %q", got, want)
	}
	if mode.Transport != "ssh {host} -- {exe}" {
		t.Fatalf("transport = %q", mode.Transport)
	}
	if mode.Timeout != 90*time.Second {
		t.Fatalf("timeout = %v", mode.Timeout)
	}
}

func TestVerdict(t *testing.T) {
	v := func(tput, delay float64) abVariant {
		return abVariant{TputP: []float64{tput, tput, tput}, DelayP: []float64{delay, delay, delay}}
	}
	cases := []struct {
		a, b abVariant
		want string
	}{
		{v(1100, 90), v(1000, 100), "A wins"},
		{v(900, 110), v(1000, 100), "B wins"},
		{v(1100, 110), v(1000, 100), "mixed"},
		{v(1000, 100), v(1000, 100), "tie"},
		{v(1100, 100), v(1000, 100), "A wins"}, // delay tied, throughput decides
	}
	for _, c := range cases {
		if got := verdict(c.a, c.b); !strings.Contains(got, c.want) {
			t.Errorf("verdict(%v, %v) = %q, want %q", c.a.TputP[0], c.b.TputP[0], got, c.want)
		}
	}
}

// TestChildWorkers checks the fan-out splits the machine width instead of
// oversubscribing it once per child.
func TestChildWorkers(t *testing.T) {
	// Explicit -parallel forwards unchanged.
	if got := childWorkers(3, 0, 2); got != 3 {
		t.Fatalf("explicit parallel: got %d, want 3", got)
	}
	// Auto mode: shares sum to the machine width (or shards, whichever is
	// larger — every child gets at least one worker).
	for shards := 1; shards <= 5; shards++ {
		sum := 0
		for i := 0; i < shards; i++ {
			w := childWorkers(0, i, shards)
			if w < 1 {
				t.Fatalf("shard %d/%d: %d workers", i, shards, w)
			}
			sum += w
		}
		if sum < shards {
			t.Fatalf("shards=%d: shares sum to %d", shards, sum)
		}
	}
}
