package main

import (
	"strings"
	"testing"

	"sprout/internal/engine"
)

// TestParseShardFlags is the satellite contract: every malformed flag
// combination yields a one-line error (for exit 2), never a panic, and
// the valid combinations select the right mode.
func TestParseShardFlags(t *testing.T) {
	cases := []struct {
		name                           string
		shard                          string
		shards                         int
		ab, scenario, out, checkpoint  string
		wantErr                        string // substring, "" = success
		wantWorker, wantParent, wantAB bool
	}{
		{name: "default", wantErr: ""},
		{name: "worker", shard: "1/4", scenario: "s.json", out: "x.jsonl", wantWorker: true},
		{name: "worker stdout", shard: "0/2", scenario: "s.json", wantWorker: true},
		{name: "parent", shards: 4, scenario: "s.json", wantParent: true},
		{name: "parent checkpointed", shards: 2, scenario: "s.json", checkpoint: "ck", wantParent: true},
		{name: "single shard is direct", shards: 1, scenario: "s.json"},
		{name: "ab", ab: "a.json,b.json", wantAB: true},
		{name: "ab sharded", ab: "a.json,b.json", shards: 4, wantAB: true},

		{name: "bad shard syntax", shard: "nope", scenario: "s.json", wantErr: "shard"},
		{name: "shard out of range", shard: "4/4", scenario: "s.json", wantErr: "outside"},
		{name: "shard needs scenario", shard: "0/2", wantErr: "-scenario is required"},
		{name: "shard vs shards", shard: "0/2", shards: 2, scenario: "s.json", wantErr: "mutually exclusive"},
		{name: "negative shards", shards: -1, wantErr: ">= 0"},
		{name: "shards need scenario", shards: 2, wantErr: "-scenario is required"},
		{name: "ab wants two files", ab: "a.json", wantErr: "exactly two"},
		{name: "ab three files", ab: "a,b,c", wantErr: "exactly two"},
		{name: "ab empty side", ab: "a.json,", wantErr: "exactly two"},
		{name: "ab vs shard", ab: "a.json,b.json", shard: "0/2", wantErr: "mutually exclusive"},
		{name: "ab vs scenario", ab: "a.json,b.json", scenario: "s.json", wantErr: "-ab replaces -scenario"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			mode, err := parseShardFlags(c.shard, c.shards, c.ab, c.scenario, c.out, c.checkpoint)
			if c.wantErr != "" {
				if err == nil {
					t.Fatalf("got mode %+v, want error containing %q", mode, c.wantErr)
				}
				if !strings.Contains(err.Error(), c.wantErr) {
					t.Fatalf("error %q does not contain %q", err, c.wantErr)
				}
				if strings.Contains(err.Error(), "\n") {
					t.Fatalf("error %q is not one line", err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got := mode.Shard != nil; got != c.wantWorker {
				t.Errorf("worker mode = %v, want %v", got, c.wantWorker)
			}
			if got := mode.Shards > 1 && mode.AB == nil; got != c.wantParent {
				t.Errorf("parent mode = %v, want %v", got, c.wantParent)
			}
			if got := len(mode.AB) == 2; got != c.wantAB {
				t.Errorf("ab mode = %v, want %v", got, c.wantAB)
			}
		})
	}
}

func TestParseShardFlagsWorkerFields(t *testing.T) {
	mode, err := parseShardFlags("2/3", 0, "", "s.json", "out.jsonl", "")
	if err != nil {
		t.Fatal(err)
	}
	if *mode.Shard != (engine.Shard{Index: 2, Count: 3}) {
		t.Fatalf("shard = %v, want 2/3", mode.Shard)
	}
	if mode.Out != "out.jsonl" {
		t.Fatalf("out = %q", mode.Out)
	}
}

func TestVerdict(t *testing.T) {
	v := func(tput, delay float64) abVariant {
		return abVariant{TputP: []float64{tput, tput, tput}, DelayP: []float64{delay, delay, delay}}
	}
	cases := []struct {
		a, b abVariant
		want string
	}{
		{v(1100, 90), v(1000, 100), "A wins"},
		{v(900, 110), v(1000, 100), "B wins"},
		{v(1100, 110), v(1000, 100), "mixed"},
		{v(1000, 100), v(1000, 100), "tie"},
		{v(1100, 100), v(1000, 100), "A wins"}, // delay tied, throughput decides
	}
	for _, c := range cases {
		if got := verdict(c.a, c.b); !strings.Contains(got, c.want) {
			t.Errorf("verdict(%v, %v) = %q, want %q", c.a.TputP[0], c.b.TputP[0], got, c.want)
		}
	}
}

// TestChildWorkers checks the fan-out splits the machine width instead of
// oversubscribing it once per child.
func TestChildWorkers(t *testing.T) {
	// Explicit -parallel forwards unchanged.
	if got := childWorkers(3, 0, 2); got != 3 {
		t.Fatalf("explicit parallel: got %d, want 3", got)
	}
	// Auto mode: shares sum to the machine width (or shards, whichever is
	// larger — every child gets at least one worker).
	for shards := 1; shards <= 5; shards++ {
		sum := 0
		for i := 0; i < shards; i++ {
			w := childWorkers(0, i, shards)
			if w < 1 {
				t.Fatalf("shard %d/%d: %d workers", i, shards, w)
			}
			sum += w
		}
		if sum < shards {
			t.Fatalf("shards=%d: shares sum to %d", shards, sum)
		}
	}
}
