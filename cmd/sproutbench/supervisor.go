// The shard supervisor: the parent half of a multi-process sweep,
// generalized over a dispatch.Transport so shards run as local children
// or on a pool of remote hosts. Each shard is watched through its
// checkpoint stream — the supervisor pulls the shard's log
// incrementally by offset, mirrors it to locally-durable storage, and
// treats record arrival as the liveness heartbeat — so one protocol
// covers process death, stalls, network faults and whole-host loss.
// Failures are classified transient/permanent and retried with capped
// jittered backoff; a dead host triggers failover (the mirror is pushed
// to a healthy host, whose worker resumes from it) without consuming
// the shard's retry budget; and jobs stranded when every path is
// exhausted are recomputed in-process from the merge's missing-index
// list — a pure function of the surviving records, so recovery never
// changes the merged bytes. See DESIGN.md §14–15.
package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"sync"
	"time"

	"sprout/internal/dispatch"
	"sprout/internal/engine"
	"sprout/internal/fault"
	"sprout/internal/harness"
	"sprout/internal/scenario"
)

// Child exit codes with contractual meaning. Everything else — including
// the fault injector's distinct codes and kill signals — is transient.
const (
	// exitUsage: the child rejected its flags. Retrying cannot help and
	// every sibling will fail identically, so the supervisor fails fast.
	exitUsage = 2
	// exitPermanent: the child found permanent data damage — a corrupt
	// (terminated-garbage) checkpoint log, or an unloadable scenario
	// grid. Retries would hit the same bytes; the shard is declared dead
	// immediately and its jobs routed to rescue.
	exitPermanent = 3
)

// failureClass buckets one child exit for the retry decision.
type failureClass int

const (
	classTransient failureClass = iota
	classPermanent
	classUsage
)

// classifyCode maps a child exit status to its failure class.
func classifyCode(code int) failureClass {
	switch code {
	case exitUsage:
		return classUsage
	case exitPermanent:
		return classPermanent
	default:
		return classTransient
	}
}

// classify buckets a shard-attempt error: corruption the supervisor's
// own pull detected is permanent (the remote bytes will not improve on
// retry), exit statuses map through classifyCode, and anything else —
// kill signals (code -1), start failures, stall kills, dropped pulls —
// is transient.
func classify(err error) failureClass {
	if errors.Is(err, engine.ErrCorruptLog) || errors.Is(err, engine.ErrManifestMismatch) {
		return classPermanent
	}
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		return classifyCode(ee.ExitCode())
	}
	return classTransient
}

// superviseConfig parameterizes one supervised multi-process sweep.
type superviseConfig struct {
	// Exe and ExtraEnv define how children launch. Tests point Exe at
	// the test binary and mark children via ExtraEnv.
	Exe      string
	ExtraEnv []string
	// Scenario is the grid file children load; Specs the same grid
	// loaded in-process (for fingerprints, merging and rescue).
	Scenario string
	Specs    []scenario.Spec
	// Dir is the checkpoint directory; Shards the decomposition width.
	Dir    string
	Shards int
	// Transport launches workers and moves checkpoint bytes (nil =
	// dispatch.LocalExec); Hosts is the dispatch pool (nil = one
	// implicit "local" host).
	Transport dispatch.Transport
	Hosts     []string
	// Retries bounds attempts per shard; Stall is the liveness deadline;
	// Poll the liveness sampling interval.
	Retries int
	Stall   time.Duration
	Poll    time.Duration
	// BackoffBase/BackoffCap bound the retry delay schedule.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Opt carries duration/skip/seed down to children and seeds the
	// backoff jitter; Parallel is the CLI worker override.
	Opt      harness.Options
	Parallel int
	// Plan injects deterministic faults into child attempts (nil = no
	// chaos).
	Plan fault.Plan
	// Rescue recomputes dead shards' jobs in-process; false leaves them
	// missing for the caller (-partial or a hard failure).
	Rescue bool
	// Log receives supervision events (nil = silent).
	Log io.Writer

	// Runtime state supervise wires up from the fields above.
	transport dispatch.Transport
	pool      *dispatch.HostPool
}

// shardOutcome records how one shard's supervision ended.
type shardOutcome struct {
	Shard    int
	Attempts int
	// Failovers counts host-death reassignments — attempts lost to a
	// dying host, which do not consume the retry budget.
	Failovers int
	// Dead: the shard did not complete (retries exhausted, permanent
	// failure, or no live hosts); its unfinished jobs need rescue.
	Dead bool
	// Usage: the child rejected its flags — a supervisor bug, fatal.
	Usage bool
	Err   error
}

// superviseSummary is a supervised sweep's result.
type superviseSummary struct {
	Results []scenario.Result
	// Missing lists global job indexes absent from the merge (empty
	// unless rescue is disabled or failed, or the sweep was cancelled).
	Missing  []int
	Outcomes []shardOutcome
	// Rescued counts jobs recomputed in-process; Quarantined counts
	// shard logs whose damaged tail was moved aside.
	Rescued     int
	Quarantined int
}

func (cfg *superviseConfig) logf(format string, args ...any) {
	if cfg.Log != nil {
		fmt.Fprintf(cfg.Log, format+"\n", args...)
	}
}

// supervise runs the sweep: stamp the checkpoint identity, run every
// shard under the retry/failover state machine, salvage dead shards'
// logs, merge, rescue what is missing, and re-merge. The merged bytes
// are byte-identical to a fault-free run whenever the grid ends
// complete — records are pure functions of (index, spec), resume never
// recomputes a completed job, and the merge orders by global index
// alone. A cancelled context (signal, -timeout) still salvages and
// merges what completed — the partial report the caller prints — but
// skips rescue and returns the context's error alongside the summary.
func supervise(ctx context.Context, cfg superviseConfig) (superviseSummary, error) {
	n := cfg.Shards
	if n < 1 {
		return superviseSummary{}, fmt.Errorf("supervise: %d shards", n)
	}
	if cfg.Retries < 1 {
		cfg.Retries = 1
	}
	if cfg.Stall <= 0 {
		cfg.Stall = 2 * time.Minute
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 250 * time.Millisecond
	}
	cfg.transport = cfg.Transport
	if cfg.transport == nil {
		cfg.transport = dispatch.LocalExec{}
	}
	hosts := cfg.Hosts
	if len(hosts) == 0 {
		hosts = []string{"local"}
	}
	cfg.Hosts = hosts
	pool, err := dispatch.NewHostPool(hosts)
	if err != nil {
		return superviseSummary{}, err
	}
	cfg.pool = pool
	if err := engine.EnsureManifest(cfg.Dir, engine.Manifest{
		Fingerprint: scenario.Fingerprint(cfg.Specs, n), Shards: n, Jobs: len(cfg.Specs),
	}); err != nil {
		return superviseSummary{}, err
	}

	sum := superviseSummary{Outcomes: make([]shardOutcome, n)}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			sum.Outcomes[i] = cfg.superviseShard(ctx, i)
		}()
	}
	wg.Wait()
	cancelled := ctx.Err() != nil
	if !cancelled {
		for _, o := range sum.Outcomes {
			if o.Usage {
				return sum, o.Err
			}
		}
	}

	// Salvage: a dead (or interrupted) shard's log may end in a torn or
	// corrupt tail. Quarantining rewrites it down to the valid record
	// prefix, so the merge below reads every survivable record.
	for _, o := range sum.Outcomes {
		if !o.Dead && !cancelled {
			continue
		}
		path := engine.ShardLogPath(cfg.Dir, o.Shard)
		if _, err := engine.QuarantineShardLog(path); err != nil {
			if os.IsNotExist(err) {
				continue // died before writing anything
			}
			return sum, err
		}
		if _, err := os.Stat(path + ".corrupt"); err == nil {
			sum.Quarantined++
			cfg.logf("sproutbench: shard %d: damaged log tail quarantined to %s.corrupt", o.Shard, path)
		}
	}

	streams, rescue, err := scenario.ReadShardStreams(cfg.Dir, n)
	if err != nil {
		return sum, err
	}
	results, missing, err := scenario.MergeResultsPartial(streams, rescue, cfg.Specs)
	if err != nil {
		return sum, err
	}

	if len(missing) > 0 && cfg.Rescue && !cancelled {
		if err := cfg.runRescue(ctx, missing); err != nil {
			return sum, err
		}
		sum.Rescued = len(missing)
		streams, rescue, err = scenario.ReadShardStreams(cfg.Dir, n)
		if err != nil {
			return sum, err
		}
		results, missing, err = scenario.MergeResultsPartial(streams, rescue, cfg.Specs)
		if err != nil {
			return sum, err
		}
	}
	sum.Results, sum.Missing = results, missing
	if cancelled {
		return sum, ctx.Err()
	}
	return sum, nil
}

// runRescue recomputes the missing job indexes in-process, appending
// their records to the checkpoint's rescue log. The list is sorted (it
// comes from the merge) and each record is a pure function of its index
// and spec, so rescue output — like everything else — is deterministic.
func (cfg *superviseConfig) runRescue(ctx context.Context, missing []int) error {
	cfg.logf("sproutbench: rescue: recomputing %d job(s) stranded by dead shards: %v", len(missing), missing)
	_, f, err := engine.OpenShardLog(engine.RescueLogPath(cfg.Dir))
	if err != nil {
		return err
	}
	defer f.Close()
	w := engine.NewRecordWriterSynced(f, f.Sync)
	_, err = scenario.RunIndexes(ctx, engine.New(cfg.Parallel), cfg.Specs, nil, missing, w)
	return err
}

// superviseShard drives one shard through the attempt state machine:
// acquire a host, launch, watch the pulled checkpoint stream, classify,
// back off, retry. A host that dies mid-attempt costs a failover, not a
// retry — the shard's budget measures the shard's own health, and host
// loss is a placement problem the pool absorbs (bounded by the pool
// size, since each failover needs a host that has not already died).
// The shard is declared dead when a permanent failure appears, the
// retry budget runs out, or no live hosts remain.
func (cfg *superviseConfig) superviseShard(ctx context.Context, shard int) shardOutcome {
	o := shardOutcome{Shard: shard}
	bo := dispatch.NewBackoff(cfg.BackoffBase, cfg.BackoffCap,
		rand.New(rand.NewSource(engine.DeriveSeed(cfg.Opt.Seed, "backoff", strconv.Itoa(shard)))))
	for o.Attempts < cfg.Retries {
		if ctx.Err() != nil {
			return o
		}
		host, ok := cfg.pool.Acquire()
		if !ok {
			o.Dead = true
			if o.Err == nil {
				o.Err = fmt.Errorf("shard %d/%d: every host in the pool is dead", shard, cfg.Shards)
			}
			cfg.logf("sproutbench: shard %d: no live hosts left (pool %v), shard dead", shard, cfg.pool)
			return o
		}
		attempt := o.Attempts + 1
		err := cfg.runAttempt(ctx, shard, attempt, host)
		cfg.pool.Release(host)
		if err == nil {
			o.Attempts, o.Err = attempt, nil
			return o
		}
		if ctx.Err() != nil {
			o.Err = err
			return o
		}
		if errors.Is(err, dispatch.ErrHostDown) {
			o.Failovers++
			o.Err = fmt.Errorf("shard %d/%d on host %s: %w", shard, cfg.Shards, host, err)
			if o.Failovers > len(cfg.Hosts) {
				o.Dead = true
				cfg.logf("sproutbench: %v: failover budget exhausted, shard dead", o.Err)
				return o
			}
			cfg.logf("sproutbench: %v: failing over (pool %v)", o.Err, cfg.pool)
			continue
		}
		o.Attempts = attempt
		o.Err = fmt.Errorf("shard %d/%d attempt %d/%d on host %s: %w", shard, cfg.Shards, attempt, cfg.Retries, host, err)
		switch classify(err) {
		case classUsage:
			o.Usage, o.Dead = true, true
			return o
		case classPermanent:
			o.Dead = true
			cfg.logf("sproutbench: %v: permanent, not retrying", o.Err)
			return o
		}
		if o.Attempts < cfg.Retries {
			delay := bo.Next()
			cfg.logf("sproutbench: %v: retrying in %v", o.Err, delay.Round(time.Millisecond))
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return o
			}
		}
	}
	o.Dead = true
	cfg.logf("sproutbench: %v: retries exhausted, shard dead", o.Err)
	return o
}

// runAttempt runs one shard attempt on host and supervises it to exit
// through the uniform pull protocol: push the locally-durable mirror to
// the host (so the worker resumes past everything already safe), start
// the worker, and poll the remote log by offset — absorbing records
// into the mirror, scoring host health from pull outcomes, and treating
// record arrival as liveness. A worker whose stream stops growing past
// the stall deadline is killed (transient — the next attempt resumes
// from the mirror); a host whose health decays to zero mid-attempt
// yields ErrHostDown (failover); a terminated malformed line in the
// stream is permanent corruption.
func (cfg *superviseConfig) runAttempt(ctx context.Context, shard, attempt int, host string) error {
	sh := engine.Shard{Index: shard, Count: cfg.Shards}
	tr := cfg.transport
	localPath := engine.ShardLogPath(cfg.Dir, shard)
	remotePath := tr.ShardLogPath(host, cfg.Dir, shard)

	// On a mirrored transport the supervisor's copy is authoritative:
	// seed the host with it before launch, then pull from just past it.
	// On LocalExec the worker writes localPath itself and the "pull" is
	// a local read — same protocol, trivial transport.
	var mirror *dispatch.ShardMirror
	var offset int64
	if tr.Mirrored() {
		m, err := dispatch.OpenShardMirror(localPath)
		if err != nil {
			return err
		}
		defer m.Close()
		mirror = m
		data, err := m.Bytes()
		if err != nil {
			return err
		}
		if err := tr.Push(ctx, host, remotePath, data); err != nil {
			cfg.pool.StartError(host)
			return fmt.Errorf("push checkpoint to %s: %w", host, err)
		}
		offset = int64(len(data))
	}

	// The fault variable is always set — cleared when no fault is
	// planned — so a supervised child can never inherit stray chaos from
	// the parent's own environment.
	injected := ""
	if f, ok := cfg.Plan.For(shard, attempt); ok {
		injected = f.String()
		cfg.logf("sproutbench: chaos: shard %d attempt %d runs with %s", shard, attempt, injected)
	}
	env := append(append([]string{}, cfg.ExtraEnv...), fault.EnvVar+"="+injected)
	argv := dispatch.WorkerArgv(cfg.Exe, cfg.Scenario, sh, remotePath,
		cfg.Opt.Duration.String(), cfg.Opt.Skip.String(), cfg.Opt.Seed,
		childWorkers(cfg.Parallel, shard, cfg.Shards))
	proc, err := tr.Start(ctx, host, argv, env, cfg.Log)
	if err != nil {
		cfg.pool.StartError(host)
		return fmt.Errorf("start on %s: %w", host, err)
	}
	done := make(chan error, 1)
	go func() { done <- proc.Wait() }()

	ps := dispatch.NewPullState(tr, host, remotePath, mirror, offset)
	prog := dispatch.NewProgress(time.Now(), cfg.Stall)
	ticker := time.NewTicker(cfg.Poll)
	defer ticker.Stop()
	for {
		select {
		case werr := <-done:
			return cfg.drainAttempt(ctx, ps, host, werr)
		case now := <-ticker.C:
			grew, perr := ps.Poll(ctx)
			switch {
			case perr == nil:
				cfg.pool.PullOK(host)
			case errors.Is(perr, engine.ErrCorruptLog):
				proc.Kill()
				<-done
				return perr
			default:
				cfg.pool.PullError(host)
				if cfg.pool.Dead(host) {
					proc.Kill()
					<-done
					return fmt.Errorf("%w: %s stopped answering pulls (%v)", dispatch.ErrHostDown, host, perr)
				}
			}
			if prog.Observe(now, grew) {
				proc.Kill()
				werr := <-done
				return fmt.Errorf("stalled (no checkpoint growth in %v) on %s, killed: %v", cfg.Stall, host, werr)
			}
		case <-ctx.Done():
			proc.Kill()
			<-done
			return ctx.Err()
		}
	}
}

// drainAttempt finishes an attempt after its worker exited: pull the
// stream to EOF so every record the worker flushed is locally durable
// before the attempt is judged. Pulls can still misbehave here (a
// dropped or truncated final pull), so the drain runs until the stream
// is clean-dry twice in a row. For a failed worker the drain is
// best-effort salvage — the worker's own error is the verdict — except
// that corruption found in the stream upgrades the verdict to permanent.
func (cfg *superviseConfig) drainAttempt(ctx context.Context, ps *dispatch.PullState, host string, werr error) error {
	dry := 0
	for tries := 0; dry < 2 && tries < 20; tries++ {
		grew, perr := ps.Poll(ctx)
		if perr != nil {
			if errors.Is(perr, engine.ErrCorruptLog) {
				return perr
			}
			cfg.pool.PullError(host)
			if werr != nil {
				return werr
			}
			if cfg.pool.Dead(host) {
				return fmt.Errorf("%w: %s stopped answering pulls (%v)", dispatch.ErrHostDown, host, perr)
			}
			dry = 0
			continue
		}
		cfg.pool.PullOK(host)
		if grew {
			dry = 0
		} else {
			dry++
		}
	}
	if werr != nil {
		return werr
	}
	if dry < 2 {
		return fmt.Errorf("completed on %s but the checkpoint drain never ran dry", host)
	}
	return nil
}

// formatMissing renders a missing-index report in full — the -partial
// contract is the exact job list, not a sample.
func formatMissing(missing []int) string {
	sorted := append([]int{}, missing...)
	sort.Ints(sorted)
	return fmt.Sprint(sorted)
}
