// The shard supervisor: the parent half of a multi-process sweep,
// rebuilt as a self-healing process manager. Each shard child is watched
// through its checkpoint log (liveness = log growth), stalled children
// are killed at a deadline, failures are classified transient/permanent
// and retried with capped exponential backoff and deterministic jitter,
// and jobs stranded by dead shards are recomputed in-process from the
// merge's missing-index list — a pure function of the surviving records,
// so recovery never changes the merged bytes. See DESIGN.md §14.
package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"sync"
	"time"

	"sprout/internal/engine"
	"sprout/internal/fault"
	"sprout/internal/harness"
	"sprout/internal/scenario"
)

// Child exit codes with contractual meaning. Everything else — including
// the fault injector's distinct codes and kill signals — is transient.
const (
	// exitUsage: the child rejected its flags. Retrying cannot help and
	// every sibling will fail identically, so the supervisor fails fast.
	exitUsage = 2
	// exitPermanent: the child found permanent data damage — a corrupt
	// (terminated-garbage) checkpoint log, or an unloadable scenario
	// grid. Retries would hit the same bytes; the shard is declared dead
	// immediately and its jobs routed to rescue.
	exitPermanent = 3
)

// failureClass buckets one child exit for the retry decision.
type failureClass int

const (
	classTransient failureClass = iota
	classPermanent
	classUsage
)

// classifyCode maps a child exit status to its failure class.
func classifyCode(code int) failureClass {
	switch code {
	case exitUsage:
		return classUsage
	case exitPermanent:
		return classPermanent
	default:
		return classTransient
	}
}

// classify buckets a child-attempt error: exit statuses through
// classifyCode, anything else (kill signals surface as code -1, start
// failures, stall kills) as transient.
func classify(err error) failureClass {
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		return classifyCode(ee.ExitCode())
	}
	return classTransient
}

// backoff produces the retry delay schedule: exponential doubling from
// base to cap, each delay jittered uniformly into [d/2, d] so a fleet of
// failed shards does not retry in lockstep. The jitter stream is seeded
// per shard (DeriveSeed of the sweep seed), making every schedule
// reproducible — a chaos run's timing is as replayable as its faults.
type backoff struct {
	d, cap time.Duration
	rng    *rand.Rand
}

func newBackoff(base, cap time.Duration, rng *rand.Rand) *backoff {
	if base <= 0 {
		base = 500 * time.Millisecond
	}
	if cap < base {
		cap = base
	}
	return &backoff{d: base, cap: cap, rng: rng}
}

// next returns the jittered delay for the coming retry and advances the
// schedule.
func (b *backoff) next() time.Duration {
	d := b.d
	b.d *= 2
	if b.d > b.cap {
		b.d = b.cap
	}
	half := d / 2
	return half + time.Duration(b.rng.Int63n(int64(half)+1))
}

// stallTracker detects a live-but-wedged child from its checkpoint log:
// the log's size is the shard's heartbeat (every completed job appends a
// record), so a log that stops growing for longer than the deadline
// means the child is stalled even though the process is still running.
type stallTracker struct {
	deadline time.Duration
	last     time.Time
	size     int64
}

func newStallTracker(now time.Time, deadline time.Duration) *stallTracker {
	return &stallTracker{deadline: deadline, last: now}
}

// observe feeds one liveness sample; it reports whether the stall
// deadline has expired. Growth of any size resets the deadline — a slow
// shard making progress is never killed, only a silent one.
func (st *stallTracker) observe(now time.Time, size int64) bool {
	if size > st.size {
		st.size, st.last = size, now
	}
	return now.Sub(st.last) > st.deadline
}

// superviseConfig parameterizes one supervised multi-process sweep.
type superviseConfig struct {
	// Exe and ExtraEnv define how children launch. Tests point Exe at
	// the test binary and mark children via ExtraEnv.
	Exe      string
	ExtraEnv []string
	// Scenario is the grid file children load; Specs the same grid
	// loaded in-process (for fingerprints, merging and rescue).
	Scenario string
	Specs    []scenario.Spec
	// Dir is the checkpoint directory; Shards the decomposition width.
	Dir    string
	Shards int
	// Retries bounds attempts per shard; Stall is the liveness deadline;
	// Poll the liveness sampling interval.
	Retries int
	Stall   time.Duration
	Poll    time.Duration
	// BackoffBase/BackoffCap bound the retry delay schedule.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Opt carries duration/skip/seed down to children and seeds the
	// backoff jitter; Parallel is the CLI worker override.
	Opt      harness.Options
	Parallel int
	// Plan injects deterministic faults into child attempts (nil = no
	// chaos).
	Plan fault.Plan
	// Rescue recomputes dead shards' jobs in-process; false leaves them
	// missing for the caller (-partial or a hard failure).
	Rescue bool
	// Log receives supervision events (nil = silent).
	Log io.Writer
}

// shardOutcome records how one shard's supervision ended.
type shardOutcome struct {
	Shard    int
	Attempts int
	// Dead: the shard did not complete (retries exhausted or permanent
	// failure); its unfinished jobs need rescue.
	Dead bool
	// Usage: the child rejected its flags — a supervisor bug, fatal.
	Usage bool
	Err   error
}

// superviseSummary is a supervised sweep's result.
type superviseSummary struct {
	Results []scenario.Result
	// Missing lists global job indexes absent from the merge (empty
	// unless rescue is disabled or failed).
	Missing  []int
	Outcomes []shardOutcome
	// Rescued counts jobs recomputed in-process; Quarantined counts
	// shard logs whose damaged tail was moved aside.
	Rescued     int
	Quarantined int
}

func (cfg *superviseConfig) logf(format string, args ...any) {
	if cfg.Log != nil {
		fmt.Fprintf(cfg.Log, format+"\n", args...)
	}
}

// supervise runs the sweep: stamp the checkpoint identity, run every
// shard under the retry/stall state machine, salvage dead shards' logs,
// merge, rescue what is missing, and re-merge. The merged bytes are
// byte-identical to a fault-free run whenever the grid ends complete —
// records are pure functions of (index, spec), resume never recomputes a
// completed job, and the merge orders by global index alone.
func supervise(ctx context.Context, cfg superviseConfig) (superviseSummary, error) {
	n := cfg.Shards
	if n < 1 {
		return superviseSummary{}, fmt.Errorf("supervise: %d shards", n)
	}
	if cfg.Retries < 1 {
		cfg.Retries = 1
	}
	if cfg.Stall <= 0 {
		cfg.Stall = 2 * time.Minute
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 250 * time.Millisecond
	}
	if err := engine.EnsureManifest(cfg.Dir, engine.Manifest{
		Fingerprint: scenario.Fingerprint(cfg.Specs, n), Shards: n, Jobs: len(cfg.Specs),
	}); err != nil {
		return superviseSummary{}, err
	}

	sum := superviseSummary{Outcomes: make([]shardOutcome, n)}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			sum.Outcomes[i] = cfg.superviseShard(ctx, i)
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return sum, err
	}
	for _, o := range sum.Outcomes {
		if o.Usage {
			return sum, o.Err
		}
	}

	// Salvage: a dead shard's log may end in a torn or corrupt tail.
	// Quarantining rewrites it down to the valid record prefix, so the
	// merge below reads every survivable record.
	for _, o := range sum.Outcomes {
		if !o.Dead {
			continue
		}
		path := engine.ShardLogPath(cfg.Dir, o.Shard)
		if _, err := engine.QuarantineShardLog(path); err != nil {
			if os.IsNotExist(err) {
				continue // died before writing anything
			}
			return sum, err
		}
		if _, err := os.Stat(path + ".corrupt"); err == nil {
			sum.Quarantined++
			cfg.logf("sproutbench: shard %d: damaged log tail quarantined to %s.corrupt", o.Shard, path)
		}
	}

	streams, rescue, err := scenario.ReadShardStreams(cfg.Dir, n)
	if err != nil {
		return sum, err
	}
	results, missing, err := scenario.MergeResultsPartial(streams, rescue, cfg.Specs)
	if err != nil {
		return sum, err
	}

	if len(missing) > 0 && cfg.Rescue {
		if err := cfg.runRescue(ctx, missing); err != nil {
			return sum, err
		}
		sum.Rescued = len(missing)
		streams, rescue, err = scenario.ReadShardStreams(cfg.Dir, n)
		if err != nil {
			return sum, err
		}
		results, missing, err = scenario.MergeResultsPartial(streams, rescue, cfg.Specs)
		if err != nil {
			return sum, err
		}
	}
	sum.Results, sum.Missing = results, missing
	return sum, nil
}

// runRescue recomputes the missing job indexes in-process, appending
// their records to the checkpoint's rescue log. The list is sorted (it
// comes from the merge) and each record is a pure function of its index
// and spec, so rescue output — like everything else — is deterministic.
func (cfg *superviseConfig) runRescue(ctx context.Context, missing []int) error {
	cfg.logf("sproutbench: rescue: recomputing %d job(s) stranded by dead shards: %v", len(missing), missing)
	_, f, err := engine.OpenShardLog(engine.RescueLogPath(cfg.Dir))
	if err != nil {
		return err
	}
	defer f.Close()
	w := engine.NewRecordWriterSynced(f, f.Sync)
	_, err = scenario.RunIndexes(ctx, engine.New(cfg.Parallel), cfg.Specs, nil, missing, w)
	return err
}

// superviseShard drives one shard through the attempt state machine:
// launch, watch, classify, back off, retry — and declare it dead when a
// permanent failure appears or the retry budget runs out.
func (cfg *superviseConfig) superviseShard(ctx context.Context, shard int) shardOutcome {
	o := shardOutcome{Shard: shard}
	logPath := engine.ShardLogPath(cfg.Dir, shard)
	bo := newBackoff(cfg.BackoffBase, cfg.BackoffCap,
		rand.New(rand.NewSource(engine.DeriveSeed(cfg.Opt.Seed, "backoff", strconv.Itoa(shard)))))
	for attempt := 1; attempt <= cfg.Retries; attempt++ {
		o.Attempts = attempt
		err := cfg.runAttempt(ctx, shard, attempt, logPath)
		if err == nil {
			o.Err = nil
			return o
		}
		o.Err = fmt.Errorf("shard %d/%d attempt %d/%d: %w", shard, cfg.Shards, attempt, cfg.Retries, err)
		switch classify(err) {
		case classUsage:
			o.Usage, o.Dead = true, true
			return o
		case classPermanent:
			o.Dead = true
			cfg.logf("sproutbench: %v: permanent, not retrying", o.Err)
			return o
		}
		if attempt < cfg.Retries {
			delay := bo.next()
			cfg.logf("sproutbench: %v: retrying in %v", o.Err, delay.Round(time.Millisecond))
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return o
			}
		}
	}
	o.Dead = true
	cfg.logf("sproutbench: %v: retries exhausted, shard dead", o.Err)
	return o
}

// runAttempt launches one child and supervises it to exit: the
// checkpoint log is polled for growth, and a child whose log stops
// growing past the stall deadline is killed (the kill is classified
// transient — the next attempt resumes from the log it left).
func (cfg *superviseConfig) runAttempt(ctx context.Context, shard, attempt int, logPath string) error {
	sh := engine.Shard{Index: shard, Count: cfg.Shards}
	cmd := exec.Command(cfg.Exe,
		"-scenario", cfg.Scenario,
		"-shard", sh.String(),
		"-out", logPath,
		"-duration", cfg.Opt.Duration.String(),
		"-skip", cfg.Opt.Skip.String(),
		"-seed", fmt.Sprint(cfg.Opt.Seed),
		"-parallel", fmt.Sprint(childWorkers(cfg.Parallel, shard, cfg.Shards)),
	)
	// The fault variable is always set — cleared when no fault is
	// planned — so a supervised child can never inherit stray chaos from
	// the parent's own environment.
	injected := ""
	if f, ok := cfg.Plan.For(shard, attempt); ok {
		injected = f.String()
		cfg.logf("sproutbench: chaos: shard %d attempt %d runs with %s", shard, attempt, injected)
	}
	cmd.Env = append(append(os.Environ(), cfg.ExtraEnv...), fault.EnvVar+"="+injected)
	cmd.Stderr = cfg.Log
	if err := cmd.Start(); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()

	st := newStallTracker(time.Now(), cfg.Stall)
	ticker := time.NewTicker(cfg.Poll)
	defer ticker.Stop()
	for {
		select {
		case err := <-done:
			return err
		case now := <-ticker.C:
			var size int64
			if fi, err := os.Stat(logPath); err == nil {
				size = fi.Size()
			}
			if st.observe(now, size) {
				cmd.Process.Kill()
				werr := <-done
				return fmt.Errorf("stalled (no checkpoint growth in %v), killed: %v", cfg.Stall, werr)
			}
		case <-ctx.Done():
			cmd.Process.Kill()
			<-done
			return ctx.Err()
		}
	}
}

// formatMissing renders a missing-index report in full — the -partial
// contract is the exact job list, not a sample.
func formatMissing(missing []int) string {
	sorted := append([]int{}, missing...)
	sort.Ints(sorted)
	return fmt.Sprint(sorted)
}
