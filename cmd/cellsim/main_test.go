package main

import (
	"strings"
	"testing"
)

// TestResolveShaping is the satellite contract for cellsim: every
// malformed source-flag combination yields a one-line error (for a
// non-zero exit), never a panic, and the valid streaming combination
// resolves both directions.
func TestResolveShaping(t *testing.T) {
	cases := []struct {
		name    string
		args    shapingArgs
		wantErr string // substring, "" = success
	}{
		{name: "stream without gen", args: shapingArgs{Stream: true}, wantErr: "-stream requires -gen"},
		{name: "stream unknown network", args: shapingArgs{Stream: true, Gen: "Carrier Pigeon"}, wantErr: "unknown network"},
		{name: "no sources at all", args: shapingArgs{}, wantErr: "need -down and -up"},
		{name: "down without up", args: shapingArgs{DownFile: "x.trace"}, wantErr: "need -down and -up"},
		{name: "unknown gen network", args: shapingArgs{Gen: "Carrier Pigeon"}, wantErr: "unknown network"},
		{name: "missing trace file", args: shapingArgs{DownFile: "/nonexistent/a.trace", UpFile: "/nonexistent/b.trace"}, wantErr: "no such file"},
		{name: "stream valid", args: shapingArgs{Stream: true, Gen: "Verizon LTE", Seed: 1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			down, up, err := resolveShaping(c.args)
			if c.wantErr != "" {
				if err == nil {
					t.Fatalf("got (%q, %q), want error containing %q", down.name, up.name, c.wantErr)
				}
				if !strings.Contains(err.Error(), c.wantErr) {
					t.Fatalf("error %q does not contain %q", err, c.wantErr)
				}
				if strings.Contains(err.Error(), "\n") {
					t.Fatalf("error %q is not one line", err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if down.process == nil || up.process == nil {
				t.Fatal("streaming mode must resolve a process per direction")
			}
			if down.name == "" || up.name == "" {
				t.Fatal("resolved shaping must carry link names")
			}
			if down.seed == up.seed {
				t.Fatal("directions must derive independent seeds")
			}
		})
	}
}
