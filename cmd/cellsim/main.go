// Command cellsim is a real-time, trace-driven UDP network emulator — the
// live counterpart of the paper's Cellsim (§4.2). It relays datagrams
// between two UDP endpoints, shaping each direction with a cellular trace:
// packets are delayed by the propagation delay, queued, and released only
// at the trace's delivery opportunities (per-byte accounting), with
// optional Bernoulli loss and CoDel queue management.
//
// Each endpoint sends its first datagram to one of cellsim's two ports to
// register; thereafter everything arriving on port A is shaped by the
// downlink trace and forwarded to the endpoint on port B, and vice versa.
//
// Usage:
//
//	cellsim -a :9001 -b :9002 -down vzw-down.trace -up vzw-up.trace
//	cellsim -a :9001 -b :9002 -gen "Verizon LTE" -loss 0.05 -codel
//	cellsim -a :9001 -b :9002 -gen "Verizon LTE" -stream
//
// With -stream, each direction is shaped by the streaming §3.1 link model
// itself instead of a pre-materialized trace: the emulator can run
// indefinitely at O(1) trace memory (-gendur is ignored).
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"sprout/internal/codel"
	"sprout/internal/engine"
	"sprout/internal/link"
	"sprout/internal/network"
	"sprout/internal/realtime"
	"sprout/internal/trace"
	"sprout/internal/udp"
)

func main() {
	addrA := flag.String("a", ":9001", "UDP listen address for side A")
	addrB := flag.String("b", ":9002", "UDP listen address for side B")
	downFile := flag.String("down", "", "mahimahi trace for A->B (downlink)")
	upFile := flag.String("up", "", "mahimahi trace for B->A (uplink)")
	gen := flag.String("gen", "", "generate traces for a canonical network instead (e.g. \"Verizon LTE\")")
	genDur := flag.Duration("gendur", 10*time.Minute, "generated trace length (ignored with -stream)")
	stream := flag.Bool("stream", false, "with -gen: drive each direction by the streaming link model (unbounded runtime, O(1) trace memory) instead of materializing -gendur of trace")
	prop := flag.Duration("prop", 20*time.Millisecond, "one-way propagation delay per direction")
	loss := flag.Float64("loss", 0, "Bernoulli loss probability per direction")
	useCodel := flag.Bool("codel", false, "apply CoDel on both queues")
	seed := flag.Int64("seed", 1, "seed for generation and loss (each direction derives its own stream; generated traces differ from pre-engine releases at the same seed)")
	stats := flag.Duration("stats", 5*time.Second, "statistics reporting interval (0 disables)")
	parallel := flag.Int("parallel", 0, "trace-generation workers for -gen: 0 = all cores, 1 = serial")
	flag.Parse()

	downSrc, upSrc, err := resolveShaping(shapingArgs{
		Stream: *stream, Gen: *gen, DownFile: *downFile, UpFile: *upFile,
		GenDur: *genDur, Seed: *seed, Parallel: *parallel,
	})
	if err != nil {
		// One-line diagnosis, non-zero exit: malformed arguments are a
		// usage error, never a panic.
		fmt.Fprintln(os.Stderr, "cellsim:", err)
		os.Exit(2)
	}

	clock := realtime.New()
	connA, err := udp.Listen(clock, *addrA)
	exitOn(err)
	connB, err := udp.Listen(clock, *addrB)
	exitOn(err)
	mode := ""
	if *stream {
		mode = ", streaming"
	}
	fmt.Fprintf(os.Stderr, "cellsim: A=%s (downlink %s, %.0f kbps%s) B=%s (uplink %s, %.0f kbps%s)\n",
		connA.LocalAddr(), downSrc.name, downSrc.meanBps/1000, mode,
		connB.LocalAddr(), upSrc.name, upSrc.meanBps/1000, mode)

	mkLink := func(src shaping, out *udp.Conn, seedOff int64) *link.Link {
		cfg := link.Config{
			Trace:            src.trace,
			Process:          src.process,
			ProcessSeed:      src.seed,
			PropagationDelay: *prop,
			LossRate:         *loss,
		}
		if *loss > 0 {
			cfg.Rand = rand.New(rand.NewSource(*seed + seedOff))
		}
		if *useCodel {
			cfg.Dequeuer = codel.New(0, 0)
		}
		return link.New(clock, cfg, func(p *network.Packet) { out.Send(p) })
	}
	// Links must be created inside the clock lock: their opportunity
	// timers fire on it.
	var downLink, upLink *link.Link
	clock.Do(func() {
		downLink = mkLink(downSrc, connB, 1)
		upLink = mkLink(upSrc, connA, 2)
	})

	ingress := func(l *link.Link) network.Handler {
		return func(p *network.Packet) {
			p.SentAt = clock.Now()
			l.Send(p)
		}
	}
	go func() { exitOn(connA.Serve(ingress(downLink))) }()
	go func() { exitOn(connB.Serve(ingress(upLink))) }()

	if *stats > 0 {
		go reportLoop(clock, *stats, downLink, upLink)
	}
	select {} // run until killed
}

// shaping is one direction's opportunity source: a materialized trace,
// or (with -stream) the streaming model pulled on demand.
type shaping struct {
	name    string
	meanBps float64
	trace   *trace.Trace
	process trace.DeliveryProcess
	seed    int64
}

// shapingArgs is the flag subset that selects the opportunity sources.
type shapingArgs struct {
	Stream           bool
	Gen              string
	DownFile, UpFile string
	GenDur           time.Duration
	Seed             int64
	Parallel         int
}

// resolveShaping validates the source flags and builds both directions'
// shaping, returning a one-line error on any malformed combination so
// main can exit non-zero without a stack trace.
func resolveShaping(a shapingArgs) (downSrc, upSrc shaping, err error) {
	if a.Stream {
		if a.Gen == "" {
			return shaping{}, shaping{}, fmt.Errorf("-stream requires -gen")
		}
		pair, ok := findNetwork(a.Gen)
		if !ok {
			return shaping{}, shaping{}, fmt.Errorf("unknown network %q (see sproutbench -list-schemes for canonical links)", a.Gen)
		}
		downSrc = shaping{name: pair.Down.Name, meanBps: pair.Down.MeanRate * trace.MTU * 8,
			process: pair.Down.Process(), seed: engine.DeriveSeed(a.Seed, pair.Name, "down")}
		upSrc = shaping{name: pair.Up.Name, meanBps: pair.Up.MeanRate * trace.MTU * 8,
			process: pair.Up.Process(), seed: engine.DeriveSeed(a.Seed, pair.Name, "up")}
		return downSrc, upSrc, nil
	}
	down, up, err := loadTraces(a.DownFile, a.UpFile, a.Gen, a.GenDur, a.Seed, a.Parallel)
	if err != nil {
		return shaping{}, shaping{}, err
	}
	return shaping{name: down.Name, meanBps: down.MeanRateBps(), trace: down},
		shaping{name: up.Name, meanBps: up.MeanRateBps(), trace: up}, nil
}

func findNetwork(name string) (trace.NetworkPair, bool) {
	for _, p := range trace.CanonicalNetworks() {
		if p.Name == name {
			return p, true
		}
	}
	return trace.NetworkPair{}, false
}

func loadTraces(downFile, upFile, gen string, genDur time.Duration, seed int64, parallel int) (down, up *trace.Trace, err error) {
	if gen != "" {
		if p, ok := findNetwork(gen); ok {
			return generateTraces(p, genDur, seed, parallel)
		}
		return nil, nil, fmt.Errorf("unknown network %q", gen)
	}
	if downFile == "" || upFile == "" {
		return nil, nil, fmt.Errorf("need -down and -up trace files, or -gen")
	}
	down, err = readTrace(downFile)
	if err != nil {
		return nil, nil, err
	}
	up, err = readTrace(upFile)
	return down, up, err
}

// generateTraces synthesizes the two directions as parallel engine jobs.
// Each direction owns an RNG derived from (seed, network, direction) —
// independent streams regardless of scheduling — so long traces for fast
// links generate at the speed of the slower core count allows.
func generateTraces(p trace.NetworkPair, genDur time.Duration, seed int64, parallel int) (down, up *trace.Trace, err error) {
	jobs := []engine.Job{
		{Name: "downlink " + p.Down.Name, Run: func(context.Context, *engine.WorkerState) error {
			rng := rand.New(rand.NewSource(engine.DeriveSeed(seed, p.Name, "down")))
			down = p.Down.Generate(genDur, rng)
			return nil
		}},
		{Name: "uplink " + p.Up.Name, Run: func(context.Context, *engine.WorkerState) error {
			rng := rand.New(rand.NewSource(engine.DeriveSeed(seed, p.Name, "up")))
			up = p.Up.Generate(genDur, rng)
			return nil
		}},
	}
	st, err := engine.New(parallel).Run(context.Background(), jobs)
	if err != nil {
		return nil, nil, err
	}
	fmt.Fprintf(os.Stderr, "cellsim: generated %v of traces (%s)\n", genDur, st)
	return down, up, nil
}

func readTrace(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.Parse(f, path)
}

func reportLoop(clock *realtime.Clock, every time.Duration, down, up *link.Link) {
	var lastDown, lastUp int64
	for range time.Tick(every) {
		clock.Do(func() {
			d, u := down.DeliveredBytes(), up.DeliveredBytes()
			fmt.Fprintf(os.Stderr,
				"cellsim: down %7.0f kbps (queue %6d B)  up %7.0f kbps (queue %6d B)\n",
				float64(d-lastDown)*8/every.Seconds()/1000, down.QueueBytes(),
				float64(u-lastUp)*8/every.Seconds()/1000, up.QueueBytes())
			lastDown, lastUp = d, u
		})
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cellsim:", err)
		os.Exit(1)
	}
}
