// Command sprouttunnel carries arbitrary UDP traffic across a cellular
// path inside a live Sprout session — the paper's SproutTunnel (§4.3) as a
// working relay. Client applications keep their ordinary sockets; the
// tunnel gives each flow its own queue, fills the Sprout window round-robin
// and bounds total buffering by the delivery forecast, so an interactive
// flow stays interactive next to a bulk one.
//
// Topology (client side sits behind the cellular link):
//
//	app ⇄ UDP :local ⇄ sprouttunnel -client ⇄ (cellular path) ⇄
//	    sprouttunnel -server ⇄ UDP dst
//
// Usage:
//
//	sprouttunnel -server -listen :6000 -forward 10.0.0.5:7000
//	sprouttunnel -client -local :5000 -remote relay.example.org:6000
//
// Each local peer (source address) becomes one tunnel flow. Two Sprout
// sessions run over the same UDP pair, one per direction, demultiplexed by
// the Sprout flow id.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"sprout/internal/network"
	"sprout/internal/protocol"
	"sprout/internal/realtime"
	"sprout/internal/transport"
	"sprout/internal/tunnel"
	"sprout/internal/udp"
)

// Sprout session ids on the wire: data toward the server, data toward the
// client.
const (
	sessToServer = 1
	sessToClient = 2
)

func main() {
	client := flag.Bool("client", false, "run the client (mobile) endpoint")
	server := flag.Bool("server", false, "run the server (relay) endpoint")
	local := flag.String("local", ":5000", "client: UDP address apps send to")
	remote := flag.String("remote", "", "client: the relay's address")
	listen := flag.String("listen", ":6000", "server: UDP listen address for the tunnel")
	forward := flag.String("forward", "", "server: destination for decapsulated datagrams")
	stats := flag.Duration("stats", 5*time.Second, "statistics interval (0 disables)")
	flag.Parse()

	switch {
	case *client && !*server && *remote != "":
		runClient(*local, *remote, *stats)
	case *server && !*client && *forward != "":
		runServer(*listen, *forward, *stats)
	default:
		fmt.Fprintln(os.Stderr, "sprouttunnel: need -client -remote HOST:PORT or -server -forward HOST:PORT")
		os.Exit(2)
	}
}

// endpoint bundles the two Sprout sessions sharing one UDP socket: a
// sender carrying outbound client traffic and a receiver producing inbound
// client traffic.
type endpoint struct {
	clock   *realtime.Clock
	sock    *udp.Conn
	ingress *tunnel.Ingress
	egress  *tunnel.Egress
	snd     *transport.Sender
	rcv     *transport.Receiver
}

// newEndpoint wires the duplex tunnel endpoint. sendSess/recvSess identify
// the Sprout session this side transmits on and listens to. deliver
// receives decapsulated client packets.
func newEndpoint(clock *realtime.Clock, sock *udp.Conn, sendSess, recvSess uint32, deliver network.Handler) *endpoint {
	e := &endpoint{clock: clock, sock: sock}
	e.ingress = tunnel.NewIngress()
	e.egress = tunnel.NewEgress(clock, deliver)
	clock.Do(func() {
		e.rcv = transport.NewReceiver(transport.ReceiverConfig{
			Flow: recvSess, Clock: clock, Conn: sock, Deliver: e.egress.Deliver,
		})
		e.snd = transport.NewSender(transport.SenderConfig{
			Flow: sendSess, Clock: clock, Conn: sock, Source: e.ingress,
		})
		e.ingress.Bind(e.snd)
	})
	return e
}

// dispatch routes one tunnel datagram to the right session endpoint by its
// Sprout flow id.
func (e *endpoint) dispatch(p *network.Packet, sendSess uint32) {
	var h protocol.Header
	h.Forecast = make([]uint32, 0, protocol.MaxForecastTicks)
	if err := h.Unmarshal(p.Payload); err != nil {
		return
	}
	if h.Flow == sendSess {
		e.snd.Receive(p) // feedback for our sender
	} else {
		e.rcv.Receive(p) // data (and its flight markers) for our receiver
	}
}

// submit queues one client datagram for carriage.
func (e *endpoint) submit(flow uint32, payload []byte) {
	pkt := &network.Packet{
		Flow:    flow,
		Size:    len(payload),
		Payload: append([]byte(nil), payload...),
		SentAt:  e.clock.Now(),
	}
	e.ingress.Submit(pkt)
}

func runClient(local, remote string, statsEvery time.Duration) {
	clock := realtime.New()
	tunnelSock, err := udp.Dial(clock, remote)
	exitOn(err)
	appAddr, err := net.ResolveUDPAddr("udp", local)
	exitOn(err)
	appSock, err := net.ListenUDP("udp", appAddr)
	exitOn(err)
	fmt.Fprintf(os.Stderr, "sprouttunnel: client %s ⇄ %s\n", appSock.LocalAddr(), remote)

	// Flow table: local app address <-> tunnel flow id.
	var mu sync.Mutex
	flowByAddr := map[string]uint32{}
	addrByFlow := map[uint32]*net.UDPAddr{}
	nextFlow := uint32(10)

	ep := newEndpoint(clock, tunnelSock, sessToServer, sessToClient, func(p *network.Packet) {
		mu.Lock()
		addr := addrByFlow[p.Flow]
		mu.Unlock()
		if addr != nil {
			appSock.WriteToUDP(p.Payload, addr)
		}
	})
	go tunnelSock.Serve(func(p *network.Packet) { ep.dispatch(p, sessToServer) })

	// Local app reader.
	go func() {
		buf := make([]byte, 64*1024)
		for {
			n, from, err := appSock.ReadFromUDP(buf)
			if err != nil {
				exitOn(err)
			}
			key := from.String()
			mu.Lock()
			flow, ok := flowByAddr[key]
			if !ok {
				flow = nextFlow
				nextFlow++
				flowByAddr[key] = flow
				addrByFlow[flow] = from
			}
			mu.Unlock()
			payload := append([]byte(nil), buf[:n]...)
			clock.Do(func() { ep.submit(flow, payload) })
		}
	}()
	reportLoop(clock, statsEvery, ep)
}

func runServer(listen, forward string, statsEvery time.Duration) {
	clock := realtime.New()
	tunnelSock, err := udp.Listen(clock, listen)
	exitOn(err)
	dst, err := net.ResolveUDPAddr("udp", forward)
	exitOn(err)
	fmt.Fprintf(os.Stderr, "sprouttunnel: relay %s → %s\n", tunnelSock.LocalAddr(), forward)

	// Per-flow upstream sockets so return traffic maps back to the flow.
	var mu sync.Mutex
	socks := map[uint32]*net.UDPConn{}

	var ep *endpoint
	upstream := func(flow uint32) *net.UDPConn {
		mu.Lock()
		defer mu.Unlock()
		if c, ok := socks[flow]; ok {
			return c
		}
		c, err := net.DialUDP("udp", nil, dst)
		if err != nil {
			return nil
		}
		socks[flow] = c
		go func() {
			buf := make([]byte, 64*1024)
			for {
				n, err := c.Read(buf)
				if err != nil {
					return
				}
				payload := append([]byte(nil), buf[:n]...)
				clock.Do(func() { ep.submit(flow, payload) })
			}
		}()
		return c
	}
	ep = newEndpoint(clock, tunnelSock, sessToClient, sessToServer, func(p *network.Packet) {
		if c := upstream(p.Flow); c != nil {
			c.Write(p.Payload)
		}
	})
	go tunnelSock.Serve(func(p *network.Packet) { ep.dispatch(p, sessToClient) })
	reportLoop(clock, statsEvery, ep)
}

func reportLoop(clock *realtime.Clock, every time.Duration, ep *endpoint) {
	if every <= 0 {
		select {}
	}
	for range time.Tick(every) {
		clock.Do(func() {
			fmt.Fprintf(os.Stderr,
				"sprouttunnel: sent %d pkts (backlog %d B, drops %d)  recv %d pkts  window %d B\n",
				ep.snd.PacketsSent(), ep.ingress.Backlog(), ep.ingress.HeadDrops(),
				ep.rcv.PacketsReceived(), ep.snd.Window())
		})
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sprouttunnel:", err)
		os.Exit(1)
	}
}
