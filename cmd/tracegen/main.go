// Command tracegen generates synthetic cellular link traces in the
// mahimahi format (one delivery-opportunity timestamp in milliseconds per
// line), using the paper's own stochastic link model parameterized for the
// eight canonical links of the evaluation.
//
// Usage:
//
//	tracegen -list
//	tracegen -link Verizon-LTE-down -duration 5m -seed 1 -o vzw-lte-down.trace
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"sprout/internal/trace"
)

func main() {
	list := flag.Bool("list", false, "list canonical link names and exit")
	info := flag.String("info", "", "analyze an existing trace file and exit")
	linkName := flag.String("link", "Verizon-LTE-down", "canonical link model name")
	duration := flag.Duration("duration", 5*time.Minute, "trace duration")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "-", "output file (- for stdout)")
	flag.Parse()

	if *info != "" {
		analyze(*info)
		return
	}
	if *list {
		for _, m := range trace.CanonicalLinks() {
			fmt.Printf("%-20s mean %6.0f pkt/s (%5.1f Mbps)  sigma %5.0f  outage every ~%3.0fs\n",
				m.Name, m.MeanRate, m.MeanRate*trace.MTU*8/1e6, m.Sigma, 1/m.OutageRate)
		}
		return
	}
	model, ok := trace.CanonicalLink(*linkName)
	if !ok {
		fmt.Fprintf(os.Stderr, "tracegen: unknown link %q (use -list)\n", *linkName)
		os.Exit(2)
	}
	tr := model.Generate(*duration, rand.New(rand.NewSource(*seed)))
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := tr.Write(w); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %d opportunities over %v (mean %.0f kbps)\n",
		tr.Count(), tr.Duration().Round(time.Second), tr.MeanRateBps()/1000)
}

// analyze prints Figure 2-style statistics for a trace file.
func analyze(path string) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	defer f.Close()
	tr, err := trace.Parse(f, path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	s := tr.ComputeStats()
	fmt.Printf("trace:                   %s\n", path)
	fmt.Printf("opportunities:           %d over %v\n", s.Opportunities, s.Duration.Round(time.Second))
	fmt.Printf("mean rate:               %.0f kbps\n", s.MeanRateBps/1000)
	fmt.Printf("interarrival p50 / p99:  %v / %v\n", s.InterarrivalP50, s.InterarrivalP99)
	fmt.Printf("within 20 ms:            %.4f\n", s.FracWithin20ms)
	fmt.Printf("tail exponent (>20ms):   %.2f\n", s.TailExponent)
	fmt.Printf("longest gap:             %v\n", s.MaxGap.Round(time.Millisecond))
	fmt.Printf("per-second p10 / p90:    %.0f / %.0f pkt\n", s.PerSecondP10, s.PerSecondP90)
}
