#!/usr/bin/env bash
# bench.sh — run the perf-tracking benchmarks and emit BENCH_<PR>.json.
#
# Usage:
#   scripts/bench.sh              # writes BENCH_3.json in the repo root
#   scripts/bench.sh out.json     # custom output path
#   BENCHTIME=200ms scripts/bench.sh   # quick smoke (CI uses this)
#
# The JSON records ns/op and allocs/op for the tracked hot paths — the
# Bayesian filter tick, the cautious forecast, the event loop (fresh-timer
# and reused-timer patterns) — plus one macro-benchmark that pushes a
# reduced scheme×link matrix through the parallel engine. The "baseline"
# block holds the pre-PR-3 numbers those were measured against (recorded
# on the PR-3 development machine), so the perf trajectory stays auditable
# across PRs.

set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_3.json}
BENCHTIME=${BENCHTIME:-1s}
MATRIX_BENCHTIME=${MATRIX_BENCHTIME:-1x}
TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT

echo "bench: micro (benchtime $BENCHTIME)..." >&2
go test -run '^$' -bench 'BenchmarkCoreTick$|BenchmarkCoreForecast$' \
    -benchmem -benchtime "$BENCHTIME" . | tee -a "$TMP" >&2
go test -run '^$' -bench 'BenchmarkLoopThroughput$|BenchmarkLoopTimerReuse$' \
    -benchmem -benchtime "$BENCHTIME" ./internal/sim/ | tee -a "$TMP" >&2

echo "bench: macro matrix (benchtime $MATRIX_BENCHTIME)..." >&2
go test -run '^$' -bench 'BenchmarkMatrixParallel$' \
    -benchmem -benchtime "$MATRIX_BENCHTIME" . | tee -a "$TMP" >&2

awk -v out="$OUT" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip -GOMAXPROCS suffix
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns[name] = $i
        if ($(i+1) == "allocs/op") allocs[name] = $i
    }
    seen[name] = 1
}
END {
    printf "{\n"
    printf "  \"pr\": 3,\n"
    printf "  \"description\": \"allocation-free event loop + inference fast paths\",\n"
    printf "  \"baseline\": {\n"
    printf "    \"comment\": \"pre-PR-3 numbers at benchtime 2s on the PR-3 dev machine\",\n"
    printf "    \"BenchmarkCoreTick\": {\"ns_per_op\": 39113, \"allocs_per_op\": 0},\n"
    printf "    \"BenchmarkCoreForecast\": {\"ns_per_op\": 234525, \"allocs_per_op\": 0},\n"
    printf "    \"BenchmarkLoopThroughput\": {\"ns_per_op\": 85.90, \"allocs_per_op\": 1}\n"
    printf "  },\n"
    printf "  \"results\": {\n"
    n = 0
    for (name in seen) order[++n] = name
    # stable order for diffs (insertion sort; asort is gawk-only)
    for (i = 2; i <= n; i++) {
        v = order[i]
        for (j = i - 1; j >= 1 && order[j] > v; j--) order[j+1] = order[j]
        order[j+1] = v
    }
    for (i = 1; i <= n; i++) {
        name = order[i]
        printf "    \"%s\": {\"ns_per_op\": %s, \"allocs_per_op\": %s}%s\n",
            name, ns[name], (name in allocs) ? allocs[name] : "null",
            (i < n) ? "," : ""
    }
    printf "  }\n"
    printf "}\n"
}' "$TMP" > "$OUT"

echo "bench: wrote $OUT" >&2
cat "$OUT"
