#!/usr/bin/env bash
# bench.sh — run the perf-tracking benchmarks and emit BENCH_<PR>.json.
#
# Usage:
#   scripts/bench.sh              # writes BENCH_4.json in the repo root
#   scripts/bench.sh out.json     # custom output path
#   BENCHTIME=200ms scripts/bench.sh   # quick smoke (CI uses this)
#
# The JSON records ns/op and allocs/op for the tracked hot paths — the
# Bayesian filter tick, the cautious forecast, the event loop (fresh-timer
# and reused-timer patterns) — plus one macro-benchmark that pushes a
# reduced scheme×link matrix through the parallel engine. The "baseline"
# block holds the pre-PR-4 (PR-3 recorded) numbers those were measured
# against, so the perf trajectory stays auditable across PRs.
#
# The matrix benchmark's allocs/op is guarded: PR 4's experiment-layer
# rework (per-worker world reuse, streaming metrics, zero-copy traces) took
# it from 335,099 to MATRIX_ALLOCS_RECORDED, and a regression of more than
# 20% over the recorded value fails this script — CI's bench-smoke step
# turns red instead of silently eroding the win.

set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_4.json}
BENCHTIME=${BENCHTIME:-1s}
MATRIX_BENCHTIME=${MATRIX_BENCHTIME:-1x}
# allocs/op of BenchmarkMatrixParallel recorded on the PR-4 dev machine
# (deterministic at -benchtime 1x); the guard allows +20%.
MATRIX_ALLOCS_RECORDED=${MATRIX_ALLOCS_RECORDED:-21220}
TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT

echo "bench: micro (benchtime $BENCHTIME)..." >&2
go test -run '^$' -bench 'BenchmarkCoreTick$|BenchmarkCoreForecast$' \
    -benchmem -benchtime "$BENCHTIME" . | tee -a "$TMP" >&2
go test -run '^$' -bench 'BenchmarkLoopThroughput$|BenchmarkLoopTimerReuse$' \
    -benchmem -benchtime "$BENCHTIME" ./internal/sim/ | tee -a "$TMP" >&2

echo "bench: macro matrix (benchtime $MATRIX_BENCHTIME)..." >&2
go test -run '^$' -bench 'BenchmarkMatrixParallel$' \
    -benchmem -benchtime "$MATRIX_BENCHTIME" . | tee -a "$TMP" >&2

awk -v out="$OUT" -v guard="$MATRIX_ALLOCS_RECORDED" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip -GOMAXPROCS suffix
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns[name] = $i
        if ($(i+1) == "allocs/op") allocs[name] = $i
    }
    seen[name] = 1
}
END {
    printf "{\n"
    printf "  \"pr\": 4,\n"
    printf "  \"description\": \"experiment-layer throughput: per-worker world reuse, streaming metrics, zero-copy trace sharing\",\n"
    printf "  \"baseline\": {\n"
    printf "    \"comment\": \"PR-3 recorded numbers (BENCH_3.json) on the PR-3/PR-4 dev machine\",\n"
    printf "    \"BenchmarkCoreTick\": {\"ns_per_op\": 16818, \"allocs_per_op\": 0},\n"
    printf "    \"BenchmarkCoreForecast\": {\"ns_per_op\": 106373, \"allocs_per_op\": 0},\n"
    printf "    \"BenchmarkLoopThroughput\": {\"ns_per_op\": 13.83, \"allocs_per_op\": 0},\n"
    printf "    \"BenchmarkLoopTimerReuse\": {\"ns_per_op\": 20.03, \"allocs_per_op\": 0},\n"
    printf "    \"BenchmarkMatrixParallel\": {\"ns_per_op\": 1508648070, \"allocs_per_op\": 335099}\n"
    printf "  },\n"
    printf "  \"guard\": {\n"
    printf "    \"comment\": \"bench-smoke fails if matrix allocs/op regresses >20%% over the PR-4 recorded value\",\n"
    printf "    \"BenchmarkMatrixParallel_allocs_per_op_recorded\": %d,\n", guard
    printf "    \"BenchmarkMatrixParallel_allocs_per_op_max\": %d\n", int(guard * 1.2)
    printf "  },\n"
    printf "  \"results\": {\n"
    n = 0
    for (name in seen) order[++n] = name
    # stable order for diffs (insertion sort; asort is gawk-only)
    for (i = 2; i <= n; i++) {
        v = order[i]
        for (j = i - 1; j >= 1 && order[j] > v; j--) order[j+1] = order[j]
        order[j+1] = v
    }
    for (i = 1; i <= n; i++) {
        name = order[i]
        printf "    \"%s\": {\"ns_per_op\": %s, \"allocs_per_op\": %s}%s\n",
            name, ns[name], (name in allocs) ? allocs[name] : "null",
            (i < n) ? "," : ""
    }
    printf "  }\n"
    printf "}\n"
}' "$TMP" > "$OUT"

echo "bench: wrote $OUT" >&2
cat "$OUT"

# Alloc-regression gate on the experiment layer: the matrix benchmark is
# deterministic in allocs/op, so a >20% excursion is a real regression,
# not noise.
MATRIX_ALLOCS=$(awk '/^BenchmarkMatrixParallel/ {
    for (i = 2; i < NF; i++) if ($(i+1) == "allocs/op") print $i
}' "$TMP" | head -n1)
if [ -z "${MATRIX_ALLOCS:-}" ]; then
    # A gate that cannot parse its input must fail, not silently pass.
    echo "bench: FAIL — could not extract BenchmarkMatrixParallel allocs/op from benchmark output" >&2
    exit 1
fi
LIMIT=$(( MATRIX_ALLOCS_RECORDED + MATRIX_ALLOCS_RECORDED / 5 ))
if [ "$MATRIX_ALLOCS" -gt "$LIMIT" ]; then
    echo "bench: FAIL — BenchmarkMatrixParallel allocs/op $MATRIX_ALLOCS exceeds guard $LIMIT (recorded $MATRIX_ALLOCS_RECORDED +20%)" >&2
    exit 1
fi
echo "bench: matrix allocs/op $MATRIX_ALLOCS within guard $LIMIT" >&2
