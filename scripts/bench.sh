#!/usr/bin/env bash
# bench.sh — run the perf-tracking benchmarks and emit BENCH_<PR>.json.
#
# Usage:
#   scripts/bench.sh              # writes BENCH_10.json in the repo root
#   scripts/bench.sh out.json     # custom output path
#   BENCHTIME=200ms scripts/bench.sh   # quick smoke (CI uses this)
#
# The JSON records ns/op and allocs/op for the tracked hot paths — the
# Bayesian filter tick, the cautious forecast, the fused §5.5 confidence
# sweep and the batched multi-flow forecast, the event loop (fresh-timer
# and reused-timer patterns) — plus the macro-benchmarks: the reduced
# scheme×link matrix on materialized traces, the same grid driven by
# streaming delivery processes, the grid decomposed over two in-process
# shards, and — new in PR 10 — the shared-cell world (one tower's
# delivery process apportioned over 16/256/1024 backlogged flows by the
# proportional-fair scheduler). The "baseline" block holds the PR-7
# recorded numbers those were measured against, so the perf trajectory
# stays auditable across PRs.
#
# Five allocs/op figures are guarded: the matrix, streaming and sharded
# macros at their recorded values (world reuse, the pull path and the
# shard codec must stay allocation-flat), the cautious forecast at zero,
# and the 1024-flow cell world at zero (the flat per-flow tables, reused
# rings and scheduler heap must never touch the heap in steady state). A
# regression of more than 20% over a recorded value (any alloc at all,
# for a recorded zero) fails this script — CI's bench-smoke step turns
# red instead of silently eroding the wins.

set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_10.json}
BENCHTIME=${BENCHTIME:-1s}
MATRIX_BENCHTIME=${MATRIX_BENCHTIME:-1x}
# allocs/op recorded on the PR-5 dev machine (deterministic at
# -benchtime 1x; the two macros must run in one binary, in this order —
# the second reuses the process-wide forecast-table cache). The matrix
# value dropped 21220 → 3528 in PR 5: the §3.1 generator's per-step
# offset buffer is now reused across steps (shared with the streaming
# process) instead of freshly allocated per 10 ms step. Guards allow +20%.
MATRIX_ALLOCS_RECORDED=${MATRIX_ALLOCS_RECORDED:-3528}
STREAMING_ALLOCS_RECORDED=${STREAMING_ALLOCS_RECORDED:-1584}
# PR 7: the two-shard decomposition of the same grid. Fewer allocs than
# the single-engine run (each shard engine sizes its buffers to its own
# half-grid) — the guard still allows +20% over the recorded value.
SHARDED_ALLOCS_RECORDED=${SHARDED_ALLOCS_RECORDED:-2966}
TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT

echo "bench: micro (benchtime $BENCHTIME)..." >&2
go test -run '^$' -bench 'BenchmarkCoreTick$|BenchmarkCoreForecast$|BenchmarkCoreForecastFast$|BenchmarkForecastSweep$|BenchmarkForecastBatch$' \
    -benchmem -benchtime "$BENCHTIME" . | tee -a "$TMP" >&2
go test -run '^$' -bench 'BenchmarkLoopThroughput$|BenchmarkLoopTimerReuse$' \
    -benchmem -benchtime "$BENCHTIME" ./internal/sim/ | tee -a "$TMP" >&2

echo "bench: macro matrix + streaming + sharded matrix + cell world (benchtime $MATRIX_BENCHTIME)..." >&2
go test -run '^$' -bench 'BenchmarkMatrixParallel$|BenchmarkStreamingMatrix$|BenchmarkShardedMatrix$|BenchmarkCellWorld$' \
    -benchmem -benchtime "$MATRIX_BENCHTIME" . | tee -a "$TMP" >&2

awk -v out="$OUT" -v mguard="$MATRIX_ALLOCS_RECORDED" -v sguard="$STREAMING_ALLOCS_RECORDED" -v shguard="$SHARDED_ALLOCS_RECORDED" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip -GOMAXPROCS suffix
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns[name] = $i
        if ($(i+1) == "allocs/op") allocs[name] = $i
    }
    seen[name] = 1
}
END {
    printf "{\n"
    printf "  \"pr\": 10,\n"
    printf "  \"description\": \"demand-coupled cell world: one tower delivery process apportioned over N flows by pluggable opportunity schedulers (round-robin, proportional-fair index heap), Poisson churn and handover on a precomputed deterministic schedule, batched per-tick forecasts, flat SoA flow state with zero steady-state allocations\",\n"
    printf "  \"baseline\": {\n"
    printf "    \"comment\": \"PR-7 recorded numbers (BENCH_7.json) on the shared dev machine; no cell-world benchmark existed before PR 10, so BenchmarkCellWorld records its own first baseline here\",\n"
    printf "    \"BenchmarkCoreTick\": {\"ns_per_op\": 13116, \"allocs_per_op\": 0},\n"
    printf "    \"BenchmarkCoreForecast\": {\"ns_per_op\": 67778, \"allocs_per_op\": 0},\n"
    printf "    \"BenchmarkCoreForecastFast\": {\"ns_per_op\": 61565, \"allocs_per_op\": 0},\n"
    printf "    \"BenchmarkForecastSweep\": {\"ns_per_op\": 107364, \"allocs_per_op\": 0},\n"
    printf "    \"BenchmarkForecastBatch\": {\"ns_per_op\": 1222912, \"allocs_per_op\": 0},\n"
    printf "    \"BenchmarkLoopThroughput\": {\"ns_per_op\": 12.43, \"allocs_per_op\": 0},\n"
    printf "    \"BenchmarkLoopTimerReuse\": {\"ns_per_op\": 14.64, \"allocs_per_op\": 0},\n"
    printf "    \"BenchmarkMatrixParallel\": {\"ns_per_op\": 947783466, \"allocs_per_op\": 3526},\n"
    printf "    \"BenchmarkStreamingMatrix\": {\"ns_per_op\": 506228986, \"allocs_per_op\": 1586},\n"
    printf "    \"BenchmarkShardedMatrix\": {\"ns_per_op\": 1052737282, \"allocs_per_op\": 2962}\n"
    printf "  },\n"
    printf "  \"guard\": {\n"
    printf "    \"comment\": \"bench-smoke fails if a guarded allocs/op regresses >20%% over its recorded value; the forecast hot path and the 1024-flow cell steady state are pinned at zero\",\n"
    printf "    \"BenchmarkCoreForecast_allocs_per_op_recorded\": 0,\n"
    printf "    \"BenchmarkCoreForecast_allocs_per_op_max\": 0,\n"
    printf "    \"BenchmarkCellWorld/1024_allocs_per_op_recorded\": 0,\n"
    printf "    \"BenchmarkCellWorld/1024_allocs_per_op_max\": 0,\n"
    printf "    \"BenchmarkMatrixParallel_allocs_per_op_recorded\": %d,\n", mguard
    printf "    \"BenchmarkMatrixParallel_allocs_per_op_max\": %d,\n", int(mguard * 1.2)
    printf "    \"BenchmarkStreamingMatrix_allocs_per_op_recorded\": %d,\n", sguard
    printf "    \"BenchmarkStreamingMatrix_allocs_per_op_max\": %d,\n", int(sguard * 1.2)
    printf "    \"BenchmarkShardedMatrix_allocs_per_op_recorded\": %d,\n", shguard
    printf "    \"BenchmarkShardedMatrix_allocs_per_op_max\": %d\n", int(shguard * 1.2)
    printf "  },\n"
    printf "  \"results\": {\n"
    n = 0
    for (name in seen) order[++n] = name
    # stable order for diffs (insertion sort; asort is gawk-only)
    for (i = 2; i <= n; i++) {
        v = order[i]
        for (j = i - 1; j >= 1 && order[j] > v; j--) order[j+1] = order[j]
        order[j+1] = v
    }
    for (i = 1; i <= n; i++) {
        name = order[i]
        printf "    \"%s\": {\"ns_per_op\": %s, \"allocs_per_op\": %s}%s\n",
            name, ns[name], (name in allocs) ? allocs[name] : "null",
            (i < n) ? "," : ""
    }
    printf "  }\n"
    printf "}\n"
}' "$TMP" > "$OUT"

echo "bench: wrote $OUT" >&2
cat "$OUT"

# Alloc-regression gates on the experiment layer: the macro benchmarks
# are deterministic in allocs/op, so a >20% excursion is a real
# regression, not noise.
gate() {
    local bench=$1 recorded=$2
    local measured
    measured=$(awk -v b="^$bench(-[0-9]+)?$" '$1 ~ b {
        for (i = 2; i < NF; i++) if ($(i+1) == "allocs/op") print $i
    }' "$TMP" | head -n1)
    if [ -z "${measured:-}" ]; then
        # A gate that cannot parse its input must fail, not silently pass.
        echo "bench: FAIL — could not extract $bench allocs/op from benchmark output" >&2
        exit 1
    fi
    local limit=$(( recorded + recorded / 5 ))
    if [ "$measured" -gt "$limit" ]; then
        echo "bench: FAIL — $bench allocs/op $measured exceeds guard $limit (recorded $recorded +20%)" >&2
        exit 1
    fi
    echo "bench: $bench allocs/op $measured within guard $limit" >&2
}
gate BenchmarkCoreForecast 0
gate 'BenchmarkCellWorld/1024' 0
gate BenchmarkMatrixParallel "$MATRIX_ALLOCS_RECORDED"
gate BenchmarkStreamingMatrix "$STREAMING_ALLOCS_RECORDED"
gate BenchmarkShardedMatrix "$SHARDED_ALLOCS_RECORDED"
