// Scenario: describe experiments as data and run them through the
// deterministic parallel engine — no harness internals required.
//
// Three specs the paper's fixed grid never offered: Vegas under 5% loss on
// the T-Mobile uplink, three Cubic-CoDel flows sharing the AT&T LTE
// downlink, and Sprout competing with LEDBAT in one bottleneck queue. The
// same specs can live in a JSON file and run via
// `sproutbench -scenario file.json`.
//
//	go run ./examples/scenario
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"sprout"
)

func main() {
	short := sprout.ScenarioSpec{
		Duration: sprout.ScenarioDuration(40 * time.Second),
		Skip:     sprout.ScenarioDuration(10 * time.Second),
		Seed:     7,
	}
	vegasLoss := short
	vegasLoss.Scheme = "vegas"
	vegasLoss.Link = "T-Mobile 3G (UMTS)"
	vegasLoss.Direction = "up"
	vegasLoss.Loss = 0.05

	multiCodel := short
	multiCodel.Scheme = "cubic-codel"
	multiCodel.Flows = 3
	multiCodel.Link = "AT&T LTE"

	shared := short
	shared.Link = "Verizon LTE"
	shared.Groups = []sprout.ScenarioFlowGroup{
		{Scheme: "sprout", Count: 2},
		{Scheme: "ledbat", Count: 1},
	}

	results, err := sprout.RunScenarios(context.Background(),
		[]sprout.ScenarioSpec{vegasLoss, multiCodel, shared}, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("%s:\n", r.Spec.Label())
		fmt.Printf("  aggregate: %.0f kbps, self-inflicted delay %v, utilization %.2f\n",
			r.Metrics.ThroughputBps/1000, r.Metrics.SelfInflicted95.Round(time.Millisecond),
			r.Metrics.Utilization)
		if len(r.Flows) > 1 {
			for _, f := range r.Flows {
				fmt.Printf("  flow %-2d %-12s %8.0f kbps   95%% delay %v\n",
					f.Flow, f.Scheme, f.ThroughputBps/1000, f.Delay95.Round(time.Millisecond))
			}
			fmt.Printf("  Jain fairness %.3f\n", r.JainIndex)
		}
	}
}
