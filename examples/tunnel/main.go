// Tunnel: SproutTunnel isolating a videoconference from a bulk download
// (§5.7 of the paper). A TCP Cubic bulk transfer and a Skype-like call
// share one cellular downlink — first directly (commingled in the same
// bufferbloated queue), then through SproutTunnel with per-flow queues and
// forecast-bounded head drops.
//
//	go run ./examples/tunnel
package main

import (
	"fmt"
	"log"
	"time"

	"sprout/internal/harness"
)

func main() {
	res, err := harness.RunTunnelComparison(harness.Options{
		Duration: 90 * time.Second,
		Skip:     20 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("TCP Cubic download + Skype call over the Verizon LTE downlink:")
	fmt.Println()
	fmt.Printf("%-22s %12s %14s\n", "", "direct", "via sprout")
	fmt.Printf("%-22s %12.0f %14.0f\n", "cubic tput (kbps)", res.CubicKbpsDirect, res.CubicKbpsTunnel)
	fmt.Printf("%-22s %12.0f %14.0f\n", "skype tput (kbps)", res.SkypeKbpsDirect, res.SkypeKbpsTunnel)
	fmt.Printf("%-22s %12.2f %14.2f\n", "skype 95% delay (s)",
		res.SkypeDelay95Direct.Seconds(), res.SkypeDelay95Tunnel.Seconds())
	fmt.Println()
	fmt.Println("Direct, Cubic fills the shared per-user queue and the call is destroyed;")
	fmt.Println("through the tunnel, the forecast bounds total buffering and round-robin")
	fmt.Println("service isolates the flows — interactivity restored at some cost to bulk")
	fmt.Printf("throughput (%d head drops signalled Cubic to back off).\n", res.TunnelHeadDrops)
}
