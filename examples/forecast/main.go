// Forecast: drive the inference engine directly — no network, no
// transport — to see the Bayesian filter at work (§3.1–3.3 of the paper).
// A synthetic link runs at 300 packets/s, collapses to an outage, and
// recovers; the program prints the posterior and the cautious forecast as
// the model reacts.
//
//	go run ./examples/forecast
package main

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"sprout"
)

func main() {
	model := sprout.NewModel(sprout.Params{})
	fc := sprout.NewDeliveryForecaster(model)
	rng := rand.New(rand.NewSource(42))
	tau := model.Params().Tick.Seconds()

	phase := func(name string, rate float64, ticks int, printEvery int) {
		fmt.Printf("\n-- %s (true rate %.0f pkt/s) --\n", name, rate)
		for i := 0; i < ticks; i++ {
			k := poisson(rng, rate*tau)
			fc.Tick(float64(k), sprout.ObsExact)
			if (i+1)%printEvery == 0 {
				forecast := fc.Forecast(nil)
				fmt.Printf("t+%4dms  posterior mean %6.1f pkt/s  P(outage) %5.3f  "+
					"95%%-safe next 100ms: %4.0f pkt (160ms: %4.0f)\n",
					(i+1)*20, model.Mean(), model.OutageProbability(),
					forecast[4], forecast[7])
			}
		}
	}

	fmt.Println("Sprout's model: Poisson deliveries whose rate wanders in Brownian")
	fmt.Println("motion (sigma = 200 pkt/s/sqrt(s)) with a sticky outage state.")
	phase("steady link", 300, 100, 25)
	phase("outage", 0, 25, 5)
	phase("recovery", 500, 50, 10)

	fmt.Println("\nNote how the cautious forecast collapses within ~100 ms of the outage")
	fmt.Println("(this is what keeps Sprout's queues short) and rebuilds as evidence")
	fmt.Println("of the recovered link accumulates.")

	_ = time.Millisecond
}

func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
