// Videoconference: the paper's motivating scenario (Figure 1). A Skype-like
// reactive rate controller and Sprout each run over the same Verizon LTE
// downlink; the table shows how Skype overshoots capacity drops and builds
// multi-second standing queues while Sprout tracks the link.
//
//	go run ./examples/videoconference
package main

import (
	"fmt"
	"log"
	"time"

	"sprout"
)

func main() {
	nets := sprout.CanonicalNetworks()
	lte := nets[0] // Verizon LTE
	const dur = 60 * time.Second

	run := func(scheme string) sprout.ExperimentResult {
		data, fb := sprout.GenerateTracePair(lte, "down", dur, 7)
		res, err := sprout.RunExperiment(sprout.ExperimentConfig{
			Scheme:        scheme,
			DataTrace:     data,
			FeedbackTrace: fb,
			Duration:      dur,
			Skip:          10 * time.Second,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Printf("One minute on the %s downlink:\n\n", lte.Name)
	fmt.Printf("%-10s %14s %22s %12s\n", "scheme", "tput (kbps)", "self-delay p95 (ms)", "utilization")
	for _, scheme := range []string{"sprout", "sprout-ewma", "skype", "facetime", "hangout"} {
		r := run(scheme)
		fmt.Printf("%-10s %14.0f %22.0f %11.0f%%\n",
			scheme, r.ThroughputBps/1000,
			float64(r.SelfInflicted95)/float64(time.Millisecond),
			r.Utilization*100)
	}
	fmt.Println("\nSprout keeps packets' queueing delay under ~100 ms with 95% probability,")
	fmt.Println("while the reactive apps lag the link's swings by seconds (paper §5.2).")
}
