// Quickstart: run a Sprout session over a synthetic Verizon LTE downlink
// in the deterministic simulator and print the paper's metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"sprout"
)

func main() {
	// 1. Synthesize a cellular link trace with the paper's stochastic
	//    model (or load a real mahimahi trace with trace.Parse).
	down, _ := sprout.CanonicalLink("Verizon-LTE-down")
	up, _ := sprout.CanonicalLink("Verizon-LTE-up")
	const dur = 60 * time.Second
	dataTrace := down.Generate(dur+5*time.Second, rand.New(rand.NewSource(1)))
	feedbackTrace := up.Generate(dur+5*time.Second, rand.New(rand.NewSource(2)))

	// 2. Build the emulated path: two one-way links with 20 ms
	//    propagation each, exactly like the paper's Cellsim.
	loop := sprout.NewSimulation()
	var rcv *sprout.Receiver
	var snd *sprout.Sender
	fwd := sprout.NewLink(loop, sprout.LinkConfig{
		Trace:            dataTrace,
		PropagationDelay: 20 * time.Millisecond,
	}, func(p *sprout.Packet) { rcv.Receive(p) })
	fwd.RecordDeliveries(true)
	rev := sprout.NewLink(loop, sprout.LinkConfig{
		Trace:            feedbackTrace,
		PropagationDelay: 20 * time.Millisecond,
	}, func(p *sprout.Packet) { snd.Receive(p) })

	// 3. Attach the Sprout endpoints: the receiver runs the Bayesian
	//    inference every 20 ms and feeds forecasts back; the sender
	//    turns them into a window.
	rcv = sprout.NewReceiver(sprout.ReceiverConfig{Clock: loop, Conn: rev})
	snd = sprout.NewSender(sprout.SenderConfig{Clock: loop, Conn: fwd})

	// 4. Run one virtual minute and evaluate.
	loop.Run(dur)
	m := sprout.Evaluate(fwd.Deliveries(), dataTrace, 20*time.Millisecond, 10*time.Second, dur)

	fmt.Printf("Sprout over %s (%.1f Mbps average capacity):\n",
		dataTrace.Name, dataTrace.MeanRateBps()/1e6)
	fmt.Printf("  throughput:            %8.0f kbps (%.0f%% of capacity)\n",
		m.ThroughputBps/1000, m.Utilization*100)
	fmt.Printf("  95%% end-to-end delay:  %8v\n", m.Delay95.Round(time.Millisecond))
	fmt.Printf("  omniscient bound:      %8v\n", m.Omniscient95.Round(time.Millisecond))
	fmt.Printf("  self-inflicted delay:  %8v\n", m.SelfInflicted95.Round(time.Millisecond))
	if m.SelfInflicted95 > 300*time.Millisecond {
		log.Fatal("unexpectedly high delay; this should not happen with default parameters")
	}
}
