// Measure: the full paper pipeline in one program (§4). A Saturator
// characterizes an unknown cellular link by keeping it backlogged and
// recording ground-truth delivery instants; the recorded trace then drives
// Cellsim, and Sprout runs over the *measured* link — exactly how the
// paper's testbed turned drives around Boston into reproducible
// experiments.
//
//	go run ./examples/measure
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"sprout"
)

func main() {
	// The "unknown" link: a T-Mobile-3G-like model the measurement
	// pipeline is not told about.
	secret, _ := sprout.CanonicalLink("TMobile-3G-down")
	ground := secret.Generate(100*time.Second, rand.New(rand.NewSource(11)))

	// Phase 1 — Saturator: backlog the link, record deliveries.
	loop := sprout.NewSimulation()
	var rcv *sprout.SaturatorReceiver
	var snd *sprout.SaturatorSender
	linkUnderTest := sprout.NewLink(loop, sprout.LinkConfig{
		Trace:            ground,
		PropagationDelay: 20 * time.Millisecond,
	}, func(p *sprout.Packet) { rcv.Receive(p) })
	// Feedback path: fast and unloaded (the paper's second "feedback
	// phone" on a separate carrier).
	fbModel := sprout.LinkModel{Name: "feedback", MeanRate: 2000, Sigma: 1, Reversion: 1, MaxRate: 3000}
	feedback := sprout.NewLink(loop, sprout.LinkConfig{
		Trace:            fbModel.Generate(100*time.Second, rand.New(rand.NewSource(12))),
		PropagationDelay: 10 * time.Millisecond,
	}, func(p *sprout.Packet) { snd.Receive(p) })
	rcv = sprout.NewSaturatorReceiver(1, loop, feedback)
	snd = sprout.NewSaturatorSender(sprout.SaturatorConfig{Clock: loop, Conn: linkUnderTest, Flow: 1})
	loop.Run(90 * time.Second)

	measured := rcv.Trace("measured-TMobile-3G-down")
	fmt.Printf("Saturator: window settled at %d packets, RTT %v\n",
		snd.Window(), snd.RTT().Round(time.Millisecond))
	fmt.Printf("Ground truth: %5.0f kbps mean   Measured: %5.0f kbps mean (%d opportunities)\n",
		ground.MeanRateBps()/1000, measured.MeanRateBps()/1000, measured.Count())

	// Phase 2 — replay the measured trace in Cellsim and run Sprout on it.
	dur := 60 * time.Second
	loop2 := sprout.NewSimulation()
	var sproutRcv *sprout.Receiver
	var sproutSnd *sprout.Sender
	fwd := sprout.NewLink(loop2, sprout.LinkConfig{
		Trace:            measured,
		PropagationDelay: 20 * time.Millisecond,
	}, func(p *sprout.Packet) { sproutRcv.Receive(p) })
	fwd.RecordDeliveries(true)
	upModel, _ := sprout.CanonicalLink("TMobile-3G-up")
	rev := sprout.NewLink(loop2, sprout.LinkConfig{
		Trace:            upModel.Generate(dur+5*time.Second, rand.New(rand.NewSource(13))),
		PropagationDelay: 20 * time.Millisecond,
	}, func(p *sprout.Packet) { sproutSnd.Receive(p) })
	sproutRcv = sprout.NewReceiver(sprout.ReceiverConfig{Clock: loop2, Conn: rev})
	sproutSnd = sprout.NewSender(sprout.SenderConfig{Clock: loop2, Conn: fwd})
	loop2.Run(dur)

	m := sprout.Evaluate(fwd.Deliveries(), measured, 20*time.Millisecond, 10*time.Second, dur)
	fmt.Printf("\nSprout over the measured link:\n")
	fmt.Printf("  throughput:           %6.0f kbps (%.0f%% of measured capacity)\n",
		m.ThroughputBps/1000, m.Utilization*100)
	fmt.Printf("  self-inflicted delay: %6v\n", m.SelfInflicted95.Round(time.Millisecond))
	if m.ThroughputBps == 0 {
		log.Fatal("pipeline produced no throughput")
	}
}
